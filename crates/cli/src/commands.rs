//! Subcommand implementations. Each returns the rendered output so the
//! tests can assert on it; `main` just prints.

use crate::args::{ArgError, Args};
use etc_model::io::{read_instance, write_instance};
use etc_model::{
    blazewicz_notation, braun_instance, braun_instance_names, Consistency, EtcGenerator,
    EtcInstance, GeneratorParams, Heterogeneity,
};
use heuristics::Heuristic;
use pa_cga_core::config::{PaCgaConfig, Termination};
use pa_cga_core::crossover::CrossoverOp;
use pa_cga_core::engine::PaCga;
use pa_cga_stats::Table;
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Flag parsing problem.
    Args(ArgError),
    /// I/O problem.
    Io(std::io::Error),
    /// Anything else (bad names, bad combinations).
    Other(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Other(m) => f.write_str(m),
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
pacga — PA-CGA grid scheduling toolkit

USAGE:
  pacga generate --tasks N --machines M [--consistency c|s|i]
                 [--task-het hi|lo] [--machine-het hi|lo] [--seed S]
                 [--name NAME] [--out FILE]
  pacga info     (--braun NAME | --instance FILE)
  pacga schedule (--braun NAME | --instance FILE)
                 [--heuristic olb|met|mct|min-min|max-min|sufferage]
                 [--threads N] [--time-ms T | --evals E] [--seed S]
                 [--crossover opx|tpx|ux] [--ls N] [--out FILE]
  pacga heuristics (--braun NAME | --instance FILE)
  pacga simulate (--braun NAME | --instance FILE)
                 [--p-fail P] [--seed S] [--evals E]
                 [--policy mct|pa-cga]
  pacga sweep    (--braun NAME[,NAME...] | --all) [--runs N]
                 [--time-ms T | --evals E | --gens G] [--threads N]
                 [--ls N] [--crossover opx|tpx|ux] [--seed S]
                 [--workers W]
  pacga serve    [--addr HOST:PORT] [--workers W] [--queue-cap Q]
                 [--cache-cap C] [--batch-max B] [--data-dir DIR]
                 [--checkpoint-gens N] [--archive-keep-days D]
                 [--corpus FILE.pacst]
  pacga corpus   build [--braun] [--large] [--out FILE.pacst]
  pacga corpus   (ls|verify) --corpus FILE.pacst
  pacga bench-serve [--addr HOST:PORT] [--clients N] [--requests M]
                 [--evals E] [--seed S] [--distinct D] [--tasks N]
                 [--machines M] [--shutdown] [--timeout MS]
                 [--retries R]
  pacga chaos    [--addr HOST:PORT] [--storm burst|flap|drift|mixed]
                 [--events N] [--evals E] [--seed S] [--tasks N]
                 [--machines M] [--grid G] [--session NAME] [--resume]
                 [--reschedule-baseline H] [--no-probes]
                 [--assert-warm-wins] [--shutdown] [--timeout MS]
  pacga job start --braun NAME [--job NAME] [--checkpoint-gens N]
                 [--evals E | --gens G | --time-ms T] [--seed S]
                 [--threads N] [--ls N] [--crossover opx|tpx|ux]
  pacga job (status|log|stop|archive) --job NAME [--tail N]
  pacga job list
     (all job verbs also take [--addr HOST:PORT] [--timeout MS]
      [--retries R])
  pacga list

`sweep` runs the full replication protocol (N independent seeds per
instance) through the portfolio worker pool and prints per-instance
makespan statistics. --braun accepts prefixes: `u_c_hihi` expands to
every registry instance starting with it.

`serve` runs the batching scheduler daemon: a TCP JSON-lines protocol
(one request object per line — see README \"The scheduling daemon\")
with request batching, an instance-digest result cache, bounded-queue
backpressure and graceful drain on a `shutdown` request. `bench-serve`
is the matching load generator; with --shutdown it drains the daemon
when done.

With --data-dir, `serve` also runs the durable job manager: `pacga job
start` submits a named crash-safe run that checkpoints every N
generations and survives daemon restarts (see README \"Durable jobs\").
`pacga job list` shows live and archived jobs; --archive-keep-days
prunes archive buckets older than D days at daemon boot.

`corpus` manages the binary `.pacst` instance/result store (on-disk
layout in FORMAT.md): `build` pre-generates the Braun 512×16 grid
(--braun) and/or the large 4096×64 classes (--large); `ls` and `verify`
inspect and integrity-check a store. `serve --corpus FILE` warm-loads
the result cache from the store at boot — previously answered digests
are cache hits with zero engine evaluations — and persists the cache
back into the store on drain.

`chaos` drives a seeded fault-injection storm through a schedule-stream
session on the daemon and checks the dynamic-rescheduling invariants
after every event (see README \"Dynamic rescheduling\"). With --session
(against a --data-dir daemon) the session survives daemon kills and
--resume continues it.
";

/// Loads an instance from `--braun NAME` or `--instance FILE`.
fn load_instance(args: &Args) -> Result<EtcInstance, CliError> {
    match (args.get("braun"), args.get("instance")) {
        (Some(name), None) => {
            if !braun_instance_names().contains(&name) {
                return Err(CliError::Other(format!(
                    "unknown Braun instance {name:?}; try `pacga list`"
                )));
            }
            Ok(braun_instance(name))
        }
        (None, Some(path)) => {
            let file = File::open(path)?;
            read_instance(BufReader::new(file))
                .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))
        }
        _ => Err(CliError::Other("need exactly one of --braun or --instance".into())),
    }
}

/// `pacga list` — the 12 registry instances.
pub fn cmd_list() -> String {
    let mut out = String::from("Braun benchmark registry (regenerated deterministically):\n");
    for name in braun_instance_names() {
        out.push_str("  ");
        out.push_str(name);
        out.push('\n');
    }
    out
}

/// `pacga generate`.
pub fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let n_tasks = args.get_parse("tasks", 512usize, "usize")?;
    let n_machines = args.get_parse("machines", 16usize, "usize")?;
    let consistency: Consistency =
        args.get("consistency").unwrap_or("i").parse().map_err(CliError::Other)?;
    let parse_het = |v: Option<&str>| -> Result<Heterogeneity, CliError> {
        v.unwrap_or("hi").parse().map_err(CliError::Other)
    };
    let params = GeneratorParams {
        n_tasks,
        n_machines,
        task_heterogeneity: parse_het(args.get("task-het"))?,
        machine_heterogeneity: parse_het(args.get("machine-het"))?,
        consistency,
        seed: args.get_parse("seed", 0u64, "u64")?,
    };
    let name = args.get("name").map(String::from).unwrap_or_else(|| params.braun_name(0));
    let instance = EtcGenerator::new(params).generate_named(name);

    let mut out = format!("generated {}: {}\n", instance.name(), blazewicz_notation(&instance));
    if let Some(path) = args.get("out") {
        let file = File::create(path)?;
        write_instance(&mut BufWriter::new(file), &instance)?;
        out.push_str(&format!("written to {path}\n"));
    } else {
        out.push_str("(no --out given; nothing written)\n");
    }
    Ok(out)
}

/// `pacga info`.
pub fn cmd_info(args: &Args) -> Result<String, CliError> {
    let instance = load_instance(args)?;
    let class = etc_model::consistency::classify(instance.etc());
    let degree = etc_model::consistency::consistency_degree(instance.etc());
    Ok(format!(
        "name        : {}\nsize        : {} tasks × {} machines\nnotation    : {}\nconsistency : {class} (degree {degree:.3})\netc range   : {}\n",
        instance.name(),
        instance.n_tasks(),
        instance.n_machines(),
        blazewicz_notation(&instance),
        instance.etc_range(),
    ))
}

/// `pacga heuristics`.
pub fn cmd_heuristics(args: &Args) -> Result<String, CliError> {
    let instance = load_instance(args)?;
    let mut table = Table::new(&["heuristic", "makespan"]);
    for h in Heuristic::all() {
        table.row(&[h.name().to_string(), format!("{:.1}", h.schedule(&instance).makespan())]);
    }
    Ok(format!("{} ({})\n\n{}", instance.name(), blazewicz_notation(&instance), table.render()))
}

/// `pacga schedule`.
pub fn cmd_schedule(args: &Args) -> Result<String, CliError> {
    let instance = load_instance(args)?;

    let (schedule, detail) = if let Some(hname) = args.get("heuristic") {
        let h = Heuristic::all()
            .into_iter()
            .find(|h| h.name() == hname)
            .ok_or_else(|| CliError::Other(format!("unknown heuristic {hname:?}")))?;
        (h.schedule(&instance), format!("heuristic {hname}"))
    } else {
        let termination = if let Some(e) = args.get("evals") {
            Termination::Evaluations(
                e.parse()
                    .map_err(|_| CliError::Other(format!("--evals: cannot parse {e:?} as u64")))?,
            )
        } else {
            Termination::wall_time_ms(args.get_parse("time-ms", 2_000u64, "u64")?)
        };
        let crossover = match args.get("crossover").unwrap_or("tpx") {
            "opx" => CrossoverOp::OnePoint,
            "tpx" => CrossoverOp::TwoPoint,
            "ux" => CrossoverOp::Uniform,
            other => return Err(CliError::Other(format!("bad crossover {other:?}"))),
        };
        let config = PaCgaConfig::builder()
            .threads(args.get_parse("threads", 3usize, "usize")?)
            .crossover(crossover)
            .local_search_iterations(args.get_parse("ls", 10usize, "usize")?)
            .termination(termination)
            .seed(args.get_parse("seed", 0u64, "u64")?)
            .build();
        let summary = config.summary();
        let outcome = PaCga::new(&instance, config).run();
        let detail = format!(
            "PA-CGA [{summary}]\nevaluations {} | generations {:?} | elapsed {:.2}s",
            outcome.evaluations,
            outcome.generations,
            outcome.elapsed.as_secs_f64()
        );
        (outcome.best.schedule, detail)
    };

    let mut out = format!(
        "{} ({})\n{detail}\nmakespan : {:.1}\nflowtime : {:.4e}\nutilization : {:.3}\n",
        instance.name(),
        blazewicz_notation(&instance),
        schedule.makespan(),
        scheduling::flowtime(&instance, &schedule),
        scheduling::utilization(&schedule),
    );
    if let Some(path) = args.get("out") {
        use std::io::Write;
        let mut file = BufWriter::new(File::create(path)?);
        for (t, &m) in schedule.assignment().iter().enumerate() {
            writeln!(file, "{t} {m}")?;
        }
        out.push_str(&format!("assignment written to {path}\n"));
    }
    Ok(out)
}

/// `pacga simulate` — optimize, then execute under machine failures.
pub fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    use grid_sim::{FailureTrace, MctRescheduler, PaCgaRescheduler, Rescheduler, Simulator};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let instance = load_instance(args)?;
    let seed = args.get_parse("seed", 0u64, "u64")?;
    let p_fail = args.get_parse("p-fail", 0.2f64, "f64")?;
    if !(0.0..=1.0).contains(&p_fail) {
        return Err(CliError::Other(format!("--p-fail {p_fail} outside [0, 1]")));
    }
    let evals = args.get_parse("evals", 20_000u64, "u64")?;

    let config = PaCgaConfig::builder()
        .threads(1)
        .termination(Termination::Evaluations(evals))
        .seed(seed)
        .build();
    let schedule = PaCga::new(&instance, config).run().best.schedule;

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51_D0_0D);
    let horizon = schedule.makespan() * 0.7;
    let failures = FailureTrace::sample(instance.n_machines(), p_fail, horizon, &mut rng);

    let policy_name = args.get("policy").unwrap_or("mct");
    let mct = MctRescheduler;
    let pa = PaCgaRescheduler { seed, ..Default::default() };
    let policy: &dyn Rescheduler = match policy_name {
        "mct" => &mct,
        "pa-cga" => &pa,
        other => return Err(CliError::Other(format!("unknown policy {other:?} (mct|pa-cga)"))),
    };
    let report = Simulator::with_failures(&instance, failures.clone()).run(&schedule, policy);
    report.validate().map_err(CliError::Other)?;

    Ok(format!(
        "{} ({})\nstatic makespan   : {:.1}\nfailures          : {:?}\nrescheduler       : {}\nsimulated makespan: {:.1} ({:+.2}%)\nlost work         : {:.1}\nretried tasks     : {}\nreschedule rounds : {}\n",
        instance.name(),
        blazewicz_notation(&instance),
        schedule.makespan(),
        failures.events().iter().map(|&(m, t)| (m, t.round())).collect::<Vec<_>>(),
        policy.name(),
        report.makespan,
        100.0 * (report.makespan / schedule.makespan() - 1.0),
        report.lost_work,
        report.retried_tasks(),
        report.reschedules,
    ))
}

/// Resolves the `sweep` instance list: `--all`, or comma-separated
/// names/prefixes from `--braun` (a prefix expands to every registry
/// instance starting with it).
fn sweep_instances(args: &Args) -> Result<Vec<&'static str>, CliError> {
    if args.get_bool("all")? {
        return Ok(braun_instance_names());
    }
    let Some(spec) = args.get("braun") else {
        return Err(CliError::Other("need --braun NAME[,NAME...] or --all".into()));
    };
    let registry = braun_instance_names();
    // Order-preserving dedup: tokens may overlap non-adjacently
    // (`u_c_lolo.0,u_c` expands to u_c_lolo.0 twice).
    let mut names: Vec<&'static str> = Vec::new();
    let push_unique = |names: &mut Vec<&'static str>, name| {
        if !names.contains(&name) {
            names.push(name);
        }
    };
    for token in spec.split(',').filter(|t| !t.is_empty()) {
        if let Some(&exact) = registry.iter().find(|&&n| n == token) {
            push_unique(&mut names, exact);
            continue;
        }
        let matches: Vec<&'static str> =
            registry.iter().copied().filter(|n| n.starts_with(token)).collect();
        if matches.is_empty() {
            return Err(CliError::Other(format!(
                "no Braun instance matches {token:?}; try `pacga list`"
            )));
        }
        for name in matches {
            push_unique(&mut names, name);
        }
    }
    Ok(names)
}

/// `pacga sweep` — replication sweep over instances × seeds through the
/// portfolio runner, reporting per-instance makespan statistics.
pub fn cmd_sweep(args: &Args) -> Result<String, CliError> {
    use pa_cga_core::runner::{resolve_workers, Portfolio, RunSpec};
    use pa_cga_stats::table::{fmt_makespan, fmt_mean_std};
    use pa_cga_stats::Descriptive;

    let names = sweep_instances(args)?;
    let runs = args.get_parse("runs", 8u64, "u64")?;
    if runs == 0 {
        return Err(CliError::Other("--runs must be positive".into()));
    }
    let seed0 = args.get_parse("seed", 0u64, "u64")?;
    let threads = args.get_parse("threads", 1usize, "usize")?;
    let ls = args.get_parse("ls", 10usize, "usize")?;
    let crossover = match args.get("crossover").unwrap_or("tpx") {
        "opx" => CrossoverOp::OnePoint,
        "tpx" => CrossoverOp::TwoPoint,
        "ux" => CrossoverOp::Uniform,
        other => return Err(CliError::Other(format!("bad crossover {other:?}"))),
    };
    let termination = match (args.get("evals"), args.get("gens"), args.get("time-ms")) {
        (Some(e), None, None) => Termination::Evaluations(
            e.parse().map_err(|_| CliError::Other(format!("--evals: cannot parse {e:?}")))?,
        ),
        (None, Some(g), None) => Termination::Generations(
            g.parse().map_err(|_| CliError::Other(format!("--gens: cannot parse {g:?}")))?,
        ),
        (None, None, maybe_t) => {
            let default = 1_000u64;
            let t = match maybe_t {
                Some(t) => t
                    .parse()
                    .map_err(|_| CliError::Other(format!("--time-ms: cannot parse {t:?}")))?,
                None => default,
            };
            Termination::wall_time_ms(t)
        }
        _ => return Err(CliError::Other("give at most one of --evals, --gens, --time-ms".into())),
    };
    let workers = match args.get("workers") {
        Some(w) => Some(
            w.parse::<usize>()
                .ok()
                .filter(|&w| w > 0)
                .ok_or_else(|| CliError::Other(format!("--workers: bad count {w:?}")))?,
        ),
        None => None,
    };

    let instances: Vec<EtcInstance> = names.iter().map(|n| braun_instance(n)).collect();
    let mut portfolio = Portfolio::new();
    for instance in &instances {
        for i in 0..runs {
            let config = PaCgaConfig::builder()
                .threads(threads)
                .local_search_iterations(ls)
                .crossover(crossover)
                .termination(termination)
                .seed(seed0 + i)
                .build();
            portfolio.push(RunSpec::new(
                format!("{}/s{}", instance.name(), seed0 + i),
                PaCga::new(instance, config),
            ));
        }
    }
    if let Some(w) = workers {
        portfolio = portfolio.with_workers(w);
    }
    let resolved = resolve_workers(workers, portfolio.len());
    let total = portfolio.len();
    let mut out = format!(
        "sweep: {} instance(s) × {runs} run(s) = {total} jobs on {resolved} worker(s)\n\
         stop: {termination}; {threads} engine thread(s)/run, H2LL×{ls}, seeds {seed0}..{}\n\n",
        names.len(),
        seed0 + runs
    );

    let report = portfolio.execute();
    if let Some((_, label, panic)) = report.failures().first() {
        return Err(CliError::Other(format!("sweep run {label} failed: {panic}")));
    }

    let mut table = Table::new(&["instance", "runs", "best", "mean ± std", "worst", "mean evals"]);
    for (instance, chunk) in instances.iter().zip(report.results.chunks(runs as usize)) {
        let best: Vec<f64> = chunk
            .iter()
            .map(|r| r.as_ref().expect("failures handled above").best.makespan())
            .collect();
        let evals: f64 = chunk
            .iter()
            .map(|r| r.as_ref().expect("failures handled above").evaluations as f64)
            .sum::<f64>()
            / chunk.len() as f64;
        let d = Descriptive::from_sample(&best);
        table.row(&[
            instance.name().to_string(),
            chunk.len().to_string(),
            fmt_makespan(d.min),
            fmt_mean_std(d.mean, d.std_dev),
            fmt_makespan(d.max),
            format!("{evals:.0}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nportfolio: {total} runs in {:.2}s ({:.2} runs/s, {} workers)\n",
        report.elapsed.as_secs_f64(),
        report.runs_per_sec(),
        report.workers,
    ));
    Ok(out)
}

/// `pacga serve` — the batching scheduler daemon. Blocks until a client
/// sends `{"type":"shutdown"}`, then drains and reports.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    use pa_cga_service::{serve, ServeConfig};

    let config = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7413").to_string(),
        workers: args.get_parse("workers", 0usize, "usize")?,
        queue_cap: args.get_parse("queue-cap", 64usize, "usize")?,
        cache_cap: args.get_parse("cache-cap", 128usize, "usize")?,
        batch_max: args.get_parse("batch-max", 16usize, "usize")?,
        data_dir: args.get("data-dir").map(String::from),
        checkpoint_gens: args.get_parse("checkpoint-gens", 64u64, "u64")?,
        archive_keep_days: match args.get("archive-keep-days") {
            Some(_) => Some(args.get_parse("archive-keep-days", 0u64, "u64")?),
            None => None,
        },
        corpus: args.get("corpus").map(String::from),
    };
    if config.batch_max == 0 {
        return Err(CliError::Other("--batch-max must be positive".into()));
    }
    if config.checkpoint_gens == 0 {
        return Err(CliError::Other("--checkpoint-gens must be positive".into()));
    }
    let queue_cap = config.queue_cap;
    let cache_cap = config.cache_cap;
    let batch_max = config.batch_max;
    let workers = config.workers;
    let mut jobs_note = match &config.data_dir {
        Some(dir) => format!(", data-dir={dir}"),
        None => String::new(),
    };
    if let Some(corpus) = &config.corpus {
        jobs_note.push_str(&format!(", corpus={corpus}"));
    }
    let handle = serve(config)?;
    // Announce readiness eagerly — `dispatch`'s return value only prints
    // after the daemon exits.
    println!(
        "pacga serve: listening on {} (workers={}, queue-cap={queue_cap}, \
         cache-cap={cache_cap}, batch-max={batch_max}{jobs_note})",
        handle.addr(),
        if workers == 0 { "auto".to_string() } else { workers.to_string() },
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let summary = handle.join();
    Ok(format!("pacga serve: {summary}\n"))
}

/// Seed base for the large 4096×64 corpus classes; distinct from the
/// Braun registry's `SEED_BASE` so the two families never collide.
const LARGE_SEED_BASE: u64 = 0x9A_2010_4096;

/// `pacga corpus build|ls|verify` — the binary `.pacst` instance/result
/// store behind `pacga serve --corpus` (on-disk layout in FORMAT.md).
pub fn cmd_corpus(verb: &str, args: &Args) -> Result<String, CliError> {
    use pa_cga_service::{StoreBuilder, StoreReader};

    match verb {
        "build" => {
            let braun = args.get_bool("braun")?;
            let large = args.get_bool("large")?;
            if !braun && !large {
                return Err(CliError::Other(
                    "corpus build needs --braun and/or --large to pick instance families".into(),
                ));
            }
            let out = args.get("out").unwrap_or("corpus.pacst").to_string();
            let mut builder = StoreBuilder::new();
            if braun {
                // The full 512×16 consistency×heterogeneity grid.
                for name in braun_instance_names() {
                    builder
                        .add_instance(&braun_instance(name))
                        .map_err(|e| CliError::Other(format!("corpus build {name}: {e}")))?;
                }
            }
            if large {
                // The paper's large classes: 4096×64, high/high
                // heterogeneity, one per consistency class.
                let classes = [
                    ("c", Consistency::Consistent),
                    ("s", Consistency::SemiConsistent),
                    ("i", Consistency::Inconsistent),
                ];
                for (k, (tag, consistency)) in classes.into_iter().enumerate() {
                    let params = GeneratorParams {
                        n_tasks: 4096,
                        n_machines: 64,
                        task_heterogeneity: Heterogeneity::High,
                        machine_heterogeneity: Heterogeneity::High,
                        consistency,
                        seed: LARGE_SEED_BASE + k as u64,
                    };
                    let name = format!("l_{tag}_hihi.4096x64");
                    let instance = EtcGenerator::new(params).generate_named(name.clone());
                    builder
                        .add_instance(&instance)
                        .map_err(|e| CliError::Other(format!("corpus build {name}: {e}")))?;
                }
            }
            let path = std::path::Path::new(&out);
            builder.write(path).map_err(|e| CliError::Other(format!("corpus write {out}: {e}")))?;
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            Ok(format!(
                "corpus: wrote {} instance(s) to {out} ({bytes} bytes)\n",
                builder.instance_count()
            ))
        }
        "ls" => {
            let path = args.require("corpus")?;
            let mut reader = StoreReader::open_path(std::path::Path::new(&path))
                .map_err(|e| CliError::Other(format!("corpus {path}: {e}")))?;
            let mut out = format!(
                "{path}: {} bytes, {} instance(s), {} best record(s), {} checkpoint(s)\n",
                reader.file_len(),
                reader.instance_count(),
                reader.best_count(),
                reader.checkpoint_count(),
            );
            let instances =
                reader.instances().map_err(|e| CliError::Other(format!("corpus {path}: {e}")))?;
            for i in &instances {
                out.push_str(&format!(
                    "  inst {:<24} {}x{}\n",
                    i.name(),
                    i.n_tasks(),
                    i.n_machines()
                ));
            }
            let bests =
                reader.bests().map_err(|e| CliError::Other(format!("corpus {path}: {e}")))?;
            for (digest, run) in &bests {
                out.push_str(&format!(
                    "  best {digest:#018x} {} makespan {:.3} ({} evals)\n",
                    run.instance, run.makespan, run.evaluations
                ));
            }
            let checkpoints =
                reader.checkpoints().map_err(|e| CliError::Other(format!("corpus {path}: {e}")))?;
            for (name, payload) in &checkpoints {
                out.push_str(&format!("  ckpt {name} ({} bytes)\n", payload.len()));
            }
            Ok(out)
        }
        "verify" => {
            let path = args.require("corpus")?;
            let mut reader = StoreReader::open_path(std::path::Path::new(&path))
                .map_err(|e| CliError::Other(format!("corpus {path}: {e}")))?;
            let report =
                reader.verify().map_err(|e| CliError::Other(format!("corpus {path}: {e}")))?;
            Ok(format!(
                "corpus {path}: OK — {} instance(s), {} best record(s), {} checkpoint(s), \
                 {} unknown section(s) skipped\n",
                report.instances, report.bests, report.checkpoints, report.unknown_sections
            ))
        }
        other => Err(CliError::Other(format!(
            "unknown corpus verb {other:?}; expected build|ls|verify\n\n{USAGE}"
        ))),
    }
}

/// `pacga bench-serve` — loopback load generator against a running
/// daemon; prints req/s and latency percentiles.
pub fn cmd_bench_serve(args: &Args) -> Result<String, CliError> {
    use pa_cga_service::{run_load, LoadConfig};

    let config = LoadConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7413").to_string(),
        clients: args.get_parse("clients", 4usize, "usize")?,
        requests: args.get_parse("requests", 25usize, "usize")?,
        evals: args.get_parse("evals", 1_000u64, "u64")?,
        seed: args.get_parse("seed", 0u64, "u64")?,
        distinct: args.get_parse("distinct", 4usize, "usize")?,
        tasks: args.get_parse("tasks", 64usize, "usize")?,
        machines: args.get_parse("machines", 8usize, "usize")?,
        shutdown_after: args.get_bool("shutdown")?,
        timeout_ms: args.get_parse("timeout", 0u64, "u64")?,
        retries: args.get_parse("retries", 0u32, "u32")?,
    };
    if config.clients == 0 || config.requests == 0 {
        return Err(CliError::Other("--clients and --requests must be positive".into()));
    }
    if config.evals == 0 {
        return Err(CliError::Other("--evals must be positive".into()));
    }
    if config.tasks == 0 || config.machines == 0 {
        return Err(CliError::Other("--tasks and --machines must be positive".into()));
    }
    let report = run_load(&config)
        .map_err(|e| CliError::Other(format!("bench-serve against {}: {e}", config.addr)))?;
    Ok(format!(
        "bench-serve: {} client(s) × {} request(s) → {}\n{report}{}",
        config.clients,
        config.requests,
        config.addr,
        if config.shutdown_after { "daemon shutdown requested (drained)\n" } else { "" },
    ))
}

/// `pacga chaos` — seeded fault-injection harness against a running
/// daemon's schedule-stream sessions. Exits non-zero when any
/// dynamic-rescheduling invariant was violated.
pub fn cmd_chaos(args: &Args) -> Result<String, CliError> {
    use pa_cga_service::{run_chaos, ChaosConfig, Storm};

    let storm_name = args.get("storm").unwrap_or("mixed");
    let storm = Storm::parse(storm_name).ok_or_else(|| {
        CliError::Other(format!("unknown storm {storm_name:?}; expected burst|flap|drift|mixed"))
    })?;
    let config = ChaosConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7413").to_string(),
        tasks: args.get_parse("tasks", 64usize, "usize")?,
        machines: args.get_parse("machines", 8usize, "usize")?,
        events: args.get_parse("events", 12usize, "usize")?,
        evals: args.get_parse("evals", 2_000u64, "u64")?,
        seed: args.get_parse("seed", 0u64, "u64")?,
        grid_side: args.get_parse("grid", 5usize, "usize")?,
        storm,
        session: args.get("session").map(String::from),
        resume: args.get_bool("resume")?,
        baseline: args.get("reschedule-baseline").map(String::from),
        probes: !args.get_bool("no-probes")?,
        assert_warm_wins: args.get_bool("assert-warm-wins")?,
        shutdown_after: args.get_bool("shutdown")?,
        timeout_ms: args.get_parse("timeout", 0u64, "u64")?,
    };
    if config.tasks < 2 || config.machines < 2 {
        return Err(CliError::Other("--tasks and --machines must be at least 2".into()));
    }
    if config.events == 0 || config.evals == 0 {
        return Err(CliError::Other("--events and --evals must be positive".into()));
    }
    if config.resume && config.session.is_none() {
        return Err(CliError::Other("--resume needs --session NAME".into()));
    }
    let report = run_chaos(&config)
        .map_err(|e| CliError::Other(format!("chaos against {}: {e}", config.addr)))?;
    let text =
        format!("chaos: storm={} seed={} → {}\n{report}", storm.name(), config.seed, config.addr);
    if report.clean() {
        Ok(text)
    } else {
        Err(CliError::Other(format!("{text}chaos: INVARIANT VIOLATIONS — see above")))
    }
}

/// `pacga job <verb>` — client for the daemon's durable-job verbs.
/// Talks to a `pacga serve --data-dir ...` daemon over the same wire
/// protocol, with socket timeouts and bounded-backoff retry.
pub fn cmd_job(verb: &str, args: &Args) -> Result<String, CliError> {
    use pa_cga_service::{Json, RetryPolicy, RobustClient};

    let addr = args.get("addr").unwrap_or("127.0.0.1:7413").to_string();
    let timeout_ms = args.get_parse("timeout", 10_000u64, "u64")?;
    let retries = args.get_parse("retries", 2u32, "u32")?;

    let request = match verb {
        "start" => {
            let braun = args.require("braun")?;
            if !braun_instance_names().contains(&braun) {
                return Err(CliError::Other(format!(
                    "unknown Braun instance {braun:?}; try `pacga list`"
                )));
            }
            let mut fields = vec![("type", Json::str("job.start")), ("braun", Json::str(braun))];
            if let Some(job) = args.get("job") {
                fields.push(("job", Json::str(job)));
            }
            for (flag, key) in [
                ("checkpoint-gens", "checkpoint_gens"),
                ("evals", "evals"),
                ("gens", "gens"),
                ("time-ms", "time_ms"),
                ("seed", "seed"),
                ("threads", "threads"),
                ("ls", "ls"),
            ] {
                if args.get(flag).is_some() {
                    fields.push((key, Json::num(args.get_parse(flag, 0u64, "u64")? as f64)));
                }
            }
            if let Some(crossover) = args.get("crossover") {
                fields.push(("crossover", Json::str(crossover)));
            }
            Json::obj(fields)
        }
        "status" | "stop" | "archive" => Json::obj(vec![
            ("type", Json::str(format!("job.{verb}"))),
            ("job", Json::str(args.require("job")?)),
        ]),
        "log" => Json::obj(vec![
            ("type", Json::str("job.log")),
            ("job", Json::str(args.require("job")?)),
            ("tail", Json::num(args.get_parse("tail", 20u64, "u64")? as f64)),
        ]),
        "list" => Json::obj(vec![("type", Json::str("job.list"))]),
        other => {
            return Err(CliError::Other(format!(
                "unknown job verb {other:?}; expected start|status|log|stop|archive|list\n\n{USAGE}"
            )))
        }
    };

    let timeout = (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms));
    let policy = RetryPolicy { attempts: retries, ..RetryPolicy::default() };
    let mut client = RobustClient::new(addr.as_str(), timeout, policy);
    let v = client
        .request(&request)
        .map_err(|e| CliError::Other(format!("job {verb} against {addr}: {e}")))?;

    match v.get("type").and_then(Json::as_str) {
        Some("job") => {
            let s = |k: &str| v.get(k).and_then(Json::as_str).unwrap_or("-").to_string();
            let n = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
            let mut out = format!(
                "job        : {}\nstate      : {}\ngenerations: {}\nevaluations: {}\n",
                s("job"),
                s("state"),
                n("generations"),
                n("evaluations"),
            );
            if let Some(best) = v.get("best_makespan").and_then(Json::as_f64) {
                out.push_str(&format!("best       : {best:.3}\n"));
            }
            if let Some(rate) = v.get("evals_per_sec").and_then(Json::as_f64) {
                out.push_str(&format!("rate       : {rate:.0} evals/s\n"));
            }
            if let Some(eta) = v.get("eta_s").and_then(Json::as_f64) {
                out.push_str(&format!("eta        : {eta:.0}s\n"));
            }
            if let Some(dest) = v.get("archived_to").and_then(Json::as_str) {
                out.push_str(&format!("archived to: {dest}\n"));
            }
            if let Some(msg) = v.get("message").and_then(Json::as_str) {
                out.push_str(&format!("note       : {msg}\n"));
            }
            Ok(out)
        }
        Some("job_log") => {
            let lines = v.get("lines").and_then(Json::as_arr).unwrap_or(&[]);
            let mut out = String::new();
            for line in lines.iter().filter_map(Json::as_str) {
                out.push_str(line);
                out.push('\n');
            }
            if out.is_empty() {
                out.push_str("(empty log)\n");
            }
            Ok(out)
        }
        Some("job_list") => {
            let jobs = v.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
            if jobs.is_empty() {
                return Ok("(no jobs)\n".into());
            }
            let mut out = format!(
                "{:<20} {:<9} {:<8} {:>12} {:>14} {:>12}\n",
                "JOB", "STATE", "WHERE", "GENERATIONS", "EVALUATIONS", "BEST"
            );
            for j in jobs.iter() {
                let s = |k: &str| j.get(k).and_then(Json::as_str).unwrap_or("-").to_string();
                let n = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
                let place = match (
                    j.get("live").and_then(Json::as_bool),
                    j.get("archived_date").and_then(Json::as_str),
                ) {
                    (Some(true), _) => "live".to_string(),
                    (_, Some(date)) => date.to_string(),
                    _ => "archived".to_string(),
                };
                let best = match j.get("best_makespan").and_then(Json::as_f64) {
                    Some(b) => format!("{b:.3}"),
                    None => "-".into(),
                };
                out.push_str(&format!(
                    "{:<20} {:<9} {:<8} {:>12} {:>14} {:>12}\n",
                    s("job"),
                    s("state"),
                    place,
                    n("generations"),
                    n("evaluations"),
                    best,
                ));
            }
            Ok(out)
        }
        Some("busy") => Err(CliError::Other(format!(
            "daemon busy: {}",
            v.get("reason").and_then(Json::as_str).unwrap_or("try again")
        ))),
        _ => Err(CliError::Other(format!(
            "job {verb} failed: {}",
            v.get("message").and_then(Json::as_str).unwrap_or("unrecognized response")
        ))),
    }
}

/// Dispatches a full command line (tokens exclude the program name).
pub fn dispatch(tokens: Vec<String>) -> Result<String, CliError> {
    let command = tokens.first().cloned().unwrap_or_default();
    match command.as_str() {
        "list" => {
            Args::parse(tokens, &[])?;
            Ok(cmd_list())
        }
        "generate" => {
            let args = Args::parse(
                tokens,
                &[
                    "tasks",
                    "machines",
                    "consistency",
                    "task-het",
                    "machine-het",
                    "seed",
                    "name",
                    "out",
                ],
            )?;
            cmd_generate(&args)
        }
        "info" => {
            let args = Args::parse(tokens, &["braun", "instance"])?;
            cmd_info(&args)
        }
        "heuristics" => {
            let args = Args::parse(tokens, &["braun", "instance"])?;
            cmd_heuristics(&args)
        }
        "schedule" => {
            let args = Args::parse(
                tokens,
                &[
                    "braun",
                    "instance",
                    "heuristic",
                    "threads",
                    "time-ms",
                    "evals",
                    "seed",
                    "crossover",
                    "ls",
                    "out",
                ],
            )?;
            cmd_schedule(&args)
        }
        "simulate" => {
            let args =
                Args::parse(tokens, &["braun", "instance", "p-fail", "seed", "evals", "policy"])?;
            cmd_simulate(&args)
        }
        "sweep" => {
            let args = Args::parse(
                tokens,
                &[
                    "braun",
                    "all",
                    "runs",
                    "time-ms",
                    "evals",
                    "gens",
                    "threads",
                    "ls",
                    "crossover",
                    "seed",
                    "workers",
                ],
            )?;
            cmd_sweep(&args)
        }
        "serve" => {
            let args = Args::parse(
                tokens,
                &[
                    "addr",
                    "workers",
                    "queue-cap",
                    "cache-cap",
                    "batch-max",
                    "data-dir",
                    "checkpoint-gens",
                    "archive-keep-days",
                    "corpus",
                ],
            )?;
            cmd_serve(&args)
        }
        "corpus" => {
            // The verb is positional: `pacga corpus build --braun`.
            let verb = match tokens.get(1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => {
                    return Err(CliError::Other(format!(
                        "corpus needs a verb: build|ls|verify\n\n{USAGE}"
                    )))
                }
            };
            let mut rest = tokens;
            rest.remove(1);
            let args = Args::parse(rest, &["braun", "large", "out", "corpus"])?;
            cmd_corpus(&verb, &args)
        }
        "bench-serve" => {
            let args = Args::parse(
                tokens,
                &[
                    "addr", "clients", "requests", "evals", "seed", "distinct", "tasks",
                    "machines", "shutdown", "timeout", "retries",
                ],
            )?;
            cmd_bench_serve(&args)
        }
        "chaos" => {
            let args = Args::parse(
                tokens,
                &[
                    "addr",
                    "tasks",
                    "machines",
                    "events",
                    "evals",
                    "seed",
                    "grid",
                    "storm",
                    "session",
                    "resume",
                    "reschedule-baseline",
                    "no-probes",
                    "assert-warm-wins",
                    "shutdown",
                    "timeout",
                ],
            )?;
            cmd_chaos(&args)
        }
        "job" => {
            // The verb is positional: `pacga job status --job x`.
            let verb = match tokens.get(1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => {
                    return Err(CliError::Other(format!(
                        "job needs a verb: start|status|log|stop|archive|list\n\n{USAGE}"
                    )))
                }
            };
            let mut rest = tokens;
            rest.remove(1);
            let args = Args::parse(
                rest,
                &[
                    "addr",
                    "timeout",
                    "retries",
                    "job",
                    "braun",
                    "checkpoint-gens",
                    "evals",
                    "gens",
                    "time-ms",
                    "seed",
                    "threads",
                    "ls",
                    "crossover",
                    "tail",
                ],
            )?;
            cmd_job(&verb, &args)
        }
        "help" | "--help" | "-h" | "" => Ok(USAGE.to_string()),
        other => Err(CliError::Other(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn list_names_all_instances() {
        let out = dispatch(toks("list")).unwrap();
        for name in braun_instance_names() {
            assert!(out.contains(name));
        }
    }

    #[test]
    fn info_on_braun_instance() {
        let out = dispatch(toks("info --braun u_c_hihi.0")).unwrap();
        assert!(out.contains("512 tasks × 16 machines"));
        assert!(out.contains("Q16|"));
        assert!(out.contains("consistent"));
    }

    #[test]
    fn heuristics_table() {
        let out = dispatch(toks("heuristics --braun u_i_lolo.0")).unwrap();
        assert!(out.contains("min-min"));
        assert!(out.contains("sufferage"));
    }

    #[test]
    fn schedule_with_heuristic() {
        let out = dispatch(toks("schedule --braun u_c_lolo.0 --heuristic min-min")).unwrap();
        assert!(out.contains("heuristic min-min"));
        assert!(out.contains("makespan"));
    }

    #[test]
    fn schedule_with_pa_cga_evals() {
        let out = dispatch(toks("schedule --braun u_c_lolo.0 --threads 1 --evals 2000 --seed 3"))
            .unwrap();
        assert!(out.contains("PA-CGA"));
        assert!(out.contains("evaluations"));
    }

    #[test]
    fn generate_and_round_trip_through_file() {
        let dir = std::env::temp_dir().join("pacga_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.etc");
        let path_s = path.to_str().unwrap();
        let out = dispatch(toks(&format!(
            "generate --tasks 8 --machines 3 --consistency c --seed 5 --out {path_s}"
        )))
        .unwrap();
        assert!(out.contains("written"));
        let info = dispatch(toks(&format!("info --instance {path_s}"))).unwrap();
        assert!(info.contains("8 tasks × 3 machines"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn unknown_command_mentions_usage() {
        let err = dispatch(toks("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn usage_covers_every_subcommand() {
        for cmd in [
            "generate",
            "info",
            "schedule",
            "heuristics",
            "simulate",
            "sweep",
            "serve",
            "bench-serve",
            "chaos",
            "job",
            "corpus",
            "list",
        ] {
            assert!(USAGE.contains(&format!("pacga {cmd}")), "{cmd} missing from USAGE");
        }
    }

    #[test]
    fn job_requires_a_verb_and_rejects_unknown_verbs() {
        let err = dispatch(toks("job")).unwrap_err();
        assert!(err.to_string().contains("job needs a verb"), "{err}");
        let err = dispatch(toks("job --job x")).unwrap_err();
        assert!(err.to_string().contains("job needs a verb"), "{err}");
        let err = dispatch(toks("job frobnicate --job x")).unwrap_err();
        assert!(err.to_string().contains("unknown job verb"), "{err}");
    }

    #[test]
    fn corpus_requires_a_verb_and_rejects_unknown_verbs() {
        let err = dispatch(toks("corpus")).unwrap_err();
        assert!(err.to_string().contains("corpus needs a verb"), "{err}");
        let err = dispatch(toks("corpus --braun")).unwrap_err();
        assert!(err.to_string().contains("corpus needs a verb"), "{err}");
        let err = dispatch(toks("corpus frobnicate")).unwrap_err();
        assert!(err.to_string().contains("unknown corpus verb"), "{err}");
    }

    #[test]
    fn corpus_build_requires_a_family() {
        let err = dispatch(toks("corpus build")).unwrap_err();
        assert!(err.to_string().contains("--braun and/or --large"), "{err}");
    }

    #[test]
    fn corpus_build_ls_verify_round_trip() {
        let dir = std::env::temp_dir().join(format!("pacga-cli-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.pacst");
        let path_s = path.to_str().unwrap();
        let out = dispatch(toks(&format!("corpus build --braun --out {path_s}"))).unwrap();
        assert!(out.contains("wrote 12 instance(s)"), "{out}");
        let ls = dispatch(toks(&format!("corpus ls --corpus {path_s}"))).unwrap();
        assert!(ls.contains("12 instance(s)"), "{ls}");
        assert!(ls.contains("u_c_hihi.0"), "{ls}");
        assert!(ls.contains("512x16"), "{ls}");
        let verify = dispatch(toks(&format!("corpus verify --corpus {path_s}"))).unwrap();
        assert!(verify.contains("OK"), "{verify}");
        assert!(verify.contains("12 instance(s)"), "{verify}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_verify_reports_corruption() {
        let dir = std::env::temp_dir().join(format!("pacga-cli-badcorpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.pacst");
        std::fs::write(&path, b"garbage").unwrap();
        let err = dispatch(toks(&format!("corpus verify --corpus {}", path.to_str().unwrap())))
            .unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_start_validates_instance_before_connecting() {
        // An unknown registry name fails fast — no daemon required.
        let err = dispatch(toks("job start --braun u_z_zzzz.9")).unwrap_err();
        assert!(err.to_string().contains("unknown Braun instance"), "{err}");
        let err = dispatch(toks("job start")).unwrap_err();
        assert!(err.to_string().contains("--braun"), "{err}");
    }

    #[test]
    fn job_status_requires_job_name() {
        let err = dispatch(toks("job status")).unwrap_err();
        assert!(err.to_string().contains("--job"), "{err}");
    }

    #[test]
    fn missing_instance_source_is_error() {
        let err = dispatch(toks("info")).unwrap_err();
        assert!(err.to_string().contains("--braun or --instance"));
    }

    #[test]
    fn unknown_braun_instance_is_error() {
        let err = dispatch(toks("info --braun u_z_zzzz.9")).unwrap_err();
        assert!(err.to_string().contains("unknown Braun instance"));
    }
}

#[cfg(test)]
mod unknown_flag_tests {
    //! One test per subcommand: a flag outside the allow-list must be a
    //! named error (`unknown flag --X for \`pacga CMD\``), never
    //! silently ignored.

    use super::*;

    fn assert_rejects_unknown(command_line: &str, command: &str) {
        let tokens: Vec<String> = command_line.split_whitespace().map(String::from).collect();
        let err = dispatch(tokens).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("unknown flag --bogus"),
            "`{command_line}` should name the flag: {text}"
        );
        assert!(
            text.contains(&format!("`pacga {command}`")),
            "`{command_line}` should name the subcommand: {text}"
        );
    }

    #[test]
    fn list_rejects_unknown_flag() {
        assert_rejects_unknown("list --bogus", "list");
    }

    #[test]
    fn generate_rejects_unknown_flag() {
        assert_rejects_unknown("generate --tasks 4 --bogus 1", "generate");
    }

    #[test]
    fn info_rejects_unknown_flag() {
        assert_rejects_unknown("info --braun u_c_hihi.0 --bogus", "info");
    }

    #[test]
    fn heuristics_rejects_unknown_flag() {
        assert_rejects_unknown("heuristics --braun u_c_hihi.0 --bogus x", "heuristics");
    }

    #[test]
    fn schedule_rejects_unknown_flag() {
        // A typo'd budget flag must fail loudly, not fall back to the
        // default 2s wall-clock run.
        assert_rejects_unknown("schedule --braun u_c_hihi.0 --bogus 500", "schedule");
    }

    #[test]
    fn simulate_rejects_unknown_flag() {
        assert_rejects_unknown("simulate --braun u_c_hihi.0 --bogus 0.5", "simulate");
    }

    #[test]
    fn sweep_rejects_unknown_flag() {
        assert_rejects_unknown("sweep --braun u_c_hihi.0 --bogus 3", "sweep");
    }

    #[test]
    fn serve_rejects_unknown_flag() {
        // Parsed before the daemon binds: no listener leaks.
        assert_rejects_unknown("serve --bogus 1", "serve");
    }

    #[test]
    fn bench_serve_rejects_unknown_flag() {
        assert_rejects_unknown("bench-serve --bogus 1", "bench-serve");
    }

    #[test]
    fn chaos_rejects_unknown_flag() {
        assert_rejects_unknown("chaos --bogus 1", "chaos");
    }

    #[test]
    fn chaos_validates_before_connecting() {
        let err = dispatch(toks("chaos --storm tornado")).unwrap_err();
        assert!(err.to_string().contains("unknown storm"), "{err}");
        let err = dispatch(toks("chaos --tasks 1")).unwrap_err();
        assert!(err.to_string().contains("at least 2"), "{err}");
        let err = dispatch(toks("chaos --events 0")).unwrap_err();
        assert!(err.to_string().contains("must be positive"), "{err}");
        let err = dispatch(toks("chaos --resume")).unwrap_err();
        assert!(err.to_string().contains("--resume needs --session"), "{err}");
    }

    #[test]
    fn job_rejects_unknown_flag() {
        // The positional verb is stripped before flag parsing, so the
        // command names itself `job` in the error.
        assert_rejects_unknown("job status --job x --bogus 1", "job");
    }

    #[test]
    fn corpus_rejects_unknown_flag() {
        // The positional verb is stripped before flag parsing, so the
        // command names itself `corpus` in the error.
        assert_rejects_unknown("corpus verify --corpus x --bogus 1", "corpus");
    }

    #[test]
    fn flag_value_is_not_mistaken_for_a_flag() {
        // Regression guard: `--addr`'s value must not trip the check.
        let err =
            dispatch(toks("bench-serve --addr 127.0.0.1:1 --clients 1 --requests 1")).unwrap_err();
        assert!(err.to_string().contains("bench-serve against"), "{err}");
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }
}

#[cfg(test)]
mod serve_tests {
    use super::*;
    use pa_cga_service::{Client, Json};

    #[test]
    fn serve_and_bench_serve_round_trip() {
        // Boot the daemon on an ephemeral port in a thread (as
        // `pacga serve` would), aim `bench-serve` at it with
        // --shutdown, and check both sides' reports.
        let handle = pa_cga_service::serve(pa_cga_service::ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();

        let args = Args::parse(
            format!("bench-serve --addr {addr} --clients 2 --requests 4 --evals 300 --distinct 1 --shutdown")
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
            &["addr", "clients", "requests", "evals", "seed", "distinct", "shutdown"],
        )
        .unwrap();
        let out = cmd_bench_serve(&args).unwrap();
        assert!(out.contains("req/s"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("8 ok"), "{out}");
        assert!(out.contains("drained"), "{out}");

        let summary = handle.join();
        assert_eq!(summary.completed, 8);
        assert!(summary.cache_hits > 0, "identical requests must hit the cache");
    }

    #[test]
    fn bench_serve_validates_counts() {
        let err =
            dispatch("bench-serve --clients 0".split_whitespace().map(String::from).collect())
                .unwrap_err();
        assert!(err.to_string().contains("must be positive"), "{err}");
    }

    #[test]
    fn serve_validates_batch_max() {
        let err = dispatch("serve --batch-max 0".split_whitespace().map(String::from).collect())
            .unwrap_err();
        assert!(err.to_string().contains("--batch-max"), "{err}");
    }

    #[test]
    fn corpus_restart_answers_cached_on_first_request() {
        // The warm-start contract end-to-end over real TCP: daemon 1
        // computes and persists on drain; daemon 2 warm-loads and
        // answers the same digest cached:true with no new evaluations.
        let dir = std::env::temp_dir().join(format!("pacga-serve-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("warm.pacst");
        let config = || pa_cga_service::ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            corpus: Some(corpus.to_str().unwrap().to_string()),
            ..Default::default()
        };
        let request = Json::parse(
            r#"{"type":"schedule","etc":[[1,2],[2,1],[3,1]],"evals":400,"seed":11,"threads":1}"#,
        )
        .unwrap();

        let handle = pa_cga_service::serve(config()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let cold = client.request(&request).unwrap();
        assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false), "{cold:?}");
        client.shutdown().unwrap();
        let summary = handle.join();
        assert_eq!(summary.persisted, 1, "{summary}");

        let handle = pa_cga_service::serve(config()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let warm = client.request(&request).unwrap();
        assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true), "{warm:?}");
        assert_eq!(
            warm.get("makespan").and_then(Json::as_f64),
            cold.get("makespan").and_then(Json::as_f64),
            "warm answer must replay the persisted result"
        );
        client.shutdown().unwrap();
        let summary = handle.join();
        assert_eq!(summary.evaluations, 0, "a warm hit must spend no engine evaluations");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_request_over_raw_client_drains_daemon() {
        let handle = pa_cga_service::serve(pa_cga_service::ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..Default::default()
        })
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let ack = client.shutdown().unwrap();
        assert_eq!(ack.get("message").and_then(Json::as_str), Some("draining"));
        let summary = handle.join();
        assert!(summary.to_string().contains("drained cleanly"));
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn sweep_prints_stats_table() {
        let out =
            dispatch(toks("sweep --braun u_c_lolo.0 --runs 2 --evals 1500 --threads 1 --ls 5"))
                .unwrap();
        assert!(out.contains("u_c_lolo.0"), "{out}");
        assert!(out.contains("mean ± std"), "{out}");
        assert!(out.contains("runs/s"), "{out}");
        assert!(out.contains("1 instance(s) × 2 run(s)"), "{out}");
    }

    #[test]
    fn sweep_prefix_expands_and_results_are_seed_deterministic() {
        // A prefix must resolve to the matching registry instances, and
        // eval-budget single-thread sweeps must reproduce per seed at any
        // worker count.
        let a = dispatch(toks("sweep --braun u_c_lolo --runs 2 --evals 1200 --ls 2 --workers 1"))
            .unwrap();
        let b = dispatch(toks("sweep --braun u_c_lolo.0 --runs 2 --evals 1200 --ls 2 --workers 3"))
            .unwrap();
        assert!(a.contains("u_c_lolo.0"));
        // Compare the stats row only (banner differs: worker counts).
        let row = |out: &str| {
            out.lines().find(|l| l.starts_with("u_c_lolo.0")).map(String::from).unwrap()
        };
        assert_eq!(row(&a), row(&b));
    }

    #[test]
    fn sweep_rejects_unknown_prefix_and_missing_source() {
        let err = dispatch(toks("sweep --braun u_z --runs 1 --evals 100")).unwrap_err();
        assert!(err.to_string().contains("no Braun instance matches"));
        let err = dispatch(toks("sweep --runs 1")).unwrap_err();
        assert!(err.to_string().contains("--braun NAME[,NAME...] or --all"));
    }

    #[test]
    fn sweep_rejects_conflicting_budgets() {
        let err = dispatch(toks("sweep --braun u_c_lolo.0 --evals 100 --gens 5")).unwrap_err();
        assert!(err.to_string().contains("at most one of"));
    }

    #[test]
    fn sweep_instances_dedups_overlapping_tokens() {
        let args =
            Args::parse(toks("sweep --braun u_c_lolo.0,u_c_lolo"), &["braun", "all"]).unwrap();
        let names = sweep_instances(&args).unwrap();
        assert_eq!(names, vec!["u_c_lolo.0"]);

        // Non-adjacent duplicates too: the exact name re-surfaces in the
        // middle of a later prefix expansion.
        let args = Args::parse(toks("sweep --braun u_c_lolo.0,u_c"), &["braun", "all"]).unwrap();
        let names = sweep_instances(&args).unwrap();
        assert_eq!(names.iter().filter(|&&n| n == "u_c_lolo.0").count(), 1);
        assert_eq!(names[0], "u_c_lolo.0", "first-seen order preserved");
        assert_eq!(names.len(), 4, "all four u_c_* instances, once each");
    }
}

#[cfg(test)]
mod simulate_tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn simulate_with_mct_policy() {
        let out = dispatch(toks(
            "simulate --braun u_c_lolo.0 --p-fail 0.2 --seed 1 --evals 1500 --policy mct",
        ))
        .unwrap();
        assert!(out.contains("simulated makespan"));
        assert!(out.contains("rescheduler       : mct"));
    }

    #[test]
    fn simulate_no_failures_matches_static() {
        let out =
            dispatch(toks("simulate --braun u_c_lolo.0 --p-fail 0 --seed 1 --evals 1500")).unwrap();
        assert!(out.contains("failures          : []"));
        assert!(out.contains("0.00%"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_policy() {
        let err =
            dispatch(toks("simulate --braun u_c_lolo.0 --policy frob --evals 100")).unwrap_err();
        assert!(err.to_string().contains("unknown policy"));
    }

    #[test]
    fn simulate_rejects_bad_probability() {
        let err =
            dispatch(toks("simulate --braun u_c_lolo.0 --p-fail 1.5 --evals 100")).unwrap_err();
        assert!(err.to_string().contains("outside [0, 1]"));
    }
}
