//! `pacga` — command-line front end for the PA-CGA grid scheduling
//! toolkit. See `pacga help` for usage.

mod args;
mod commands;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(tokens) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
