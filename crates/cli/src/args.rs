//! Minimal dependency-free flag parser for the `pacga` binary.
//!
//! Supports `--flag value` and `--flag=value` forms plus bare boolean
//! flags; unknown flags are errors (catches typos early).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus flag map.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional token (subcommand); `dispatch` matches on it
    /// before parsing, so library users may ignore it.
    #[allow(dead_code)]
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Flag-parsing errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A token did not look like `--flag`.
    NotAFlag(String),
    /// A value could not be parsed.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending text.
        value: String,
        /// Expected kind.
        expected: &'static str,
    },
    /// A required flag was absent.
    Missing(String),
    /// A flag not in `allowed` appeared. Named with the subcommand so
    /// `pacga sweep --evalz 10` says exactly which command rejected what
    /// (instead of a bare "unknown flag" — or, worse, silence).
    Unknown {
        /// The subcommand that rejected the flag.
        command: String,
        /// The rejected flag (without the `--`).
        flag: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::NotAFlag(t) => write!(f, "expected --flag, found {t:?}"),
            ArgError::BadValue { flag, value, expected } => {
                write!(f, "--{flag}: cannot parse {value:?} as {expected}")
            }
            ArgError::Missing(flag) => write!(f, "required flag --{flag} missing"),
            ArgError::Unknown { command, flag } => {
                write!(f, "unknown flag --{flag} for `pacga {command}`")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw tokens (without the program name). `allowed` lists the
    /// valid flag names for the subcommand; boolean flags take the value
    /// `"true"` when given without one.
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
        allowed: &[&str],
    ) -> Result<Self, ArgError> {
        let mut it = tokens.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let name = tok.strip_prefix("--").ok_or_else(|| ArgError::NotAFlag(tok.clone()))?;
            let (key, value) = if let Some((k, v)) = name.split_once('=') {
                (k.to_string(), v.to_string())
            } else if it.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                (name.to_string(), it.next().expect("peeked"))
            } else {
                (name.to_string(), "true".to_string())
            };
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::Unknown { command, flag: key });
            }
            flags.insert(key, value);
        }
        Ok(Self { command, flags })
    }

    /// String flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Required string flag.
    #[allow(dead_code)] // exercised in tests; kept for future subcommands
    pub fn require(&self, flag: &str) -> Result<&str, ArgError> {
        self.get(flag).ok_or_else(|| ArgError::Missing(flag.to_string()))
    }

    /// Typed flag with default.
    pub fn get_parse<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }

    /// Boolean flag (present without value, or `true`/`false`).
    #[allow(dead_code)] // exercised in tests; kept for future subcommands
    pub fn get_bool(&self, flag: &str) -> Result<bool, ArgError> {
        self.get_parse(flag, false, "bool")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(toks("schedule --threads 3 --seed=7"), &["threads", "seed"]).unwrap();
        assert_eq!(a.command, "schedule");
        assert_eq!(a.get("threads"), Some("3"));
        assert_eq!(a.get("seed"), Some("7"));
    }

    #[test]
    fn boolean_flags() {
        let a = Args::parse(toks("info --verbose --name x"), &["verbose", "name"]).unwrap();
        assert!(a.get_bool("verbose").unwrap());
        assert!(!a.get_bool("quiet").unwrap());
    }

    #[test]
    fn typed_with_default() {
        let a = Args::parse(toks("x --n 12"), &["n"]).unwrap();
        assert_eq!(a.get_parse("n", 0usize, "usize").unwrap(), 12);
        assert_eq!(a.get_parse("m", 5usize, "usize").unwrap(), 5);
    }

    #[test]
    fn bad_value_reported() {
        let a = Args::parse(toks("x --n twelve"), &["n"]).unwrap();
        let err = a.get_parse("n", 0usize, "usize").unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
        assert!(err.to_string().contains("twelve"));
    }

    #[test]
    fn unknown_flag_rejected_with_command_name() {
        let err = Args::parse(toks("x --oops 1"), &["n"]).unwrap_err();
        assert_eq!(err, ArgError::Unknown { command: "x".into(), flag: "oops".into() });
        assert_eq!(err.to_string(), "unknown flag --oops for `pacga x`");
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(Args::parse(Vec::new(), &[]).unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn require_reports_missing() {
        let a = Args::parse(toks("x"), &["name"]).unwrap();
        assert!(matches!(a.require("name"), Err(ArgError::Missing(_))));
    }

    #[test]
    fn positional_after_flag_value_rejected() {
        let err = Args::parse(toks("x --n 1 stray"), &["n"]).unwrap_err();
        assert!(matches!(err, ArgError::NotAFlag(_)));
    }
}
