//! Fault-injected stream-session recovery, driven end to end through
//! the real binaries: `pacga chaos` leg 1 builds a durable session,
//! the daemon is SIGKILLed while a *live* resumed connection holds the
//! session (no drain, no final persist), and after a restart
//! `pacga chaos --resume` leg 2 must pick the session up exactly where
//! the per-event persist left it:
//!
//! * the session directory survives the kill with a parseable
//!   `session.json`, and `next_seq` reflects every acknowledged event,
//! * a ghost connection on the new daemon gets `no_session` (sessions
//!   are connection-scoped; durability is opt-in via `--resume`),
//! * the resumed chaos leg reports `resumed session` and holds every
//!   invariant, and sequence numbering continues without a gap.

use pa_cga_service::{Client, Json};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

const SEED: &str = "11";
const EVENTS_PER_LEG: u64 = 4;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns the real binary and parses the announced address.
    fn spawn(data_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pacga"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--data-dir",
                &data_dir.to_string_lossy(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pacga serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read announce line");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable announce line: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    /// SIGKILL — no drain, no final persist, mid-write is fair game.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }
}

/// One `pacga chaos` leg against the session `storm`.
fn chaos_leg(addr: &str, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pacga"))
        .args([
            "chaos",
            "--addr",
            addr,
            "--session",
            "storm",
            "--tasks",
            "24",
            "--machines",
            "4",
            "--grid",
            "4",
            "--events",
            "4",
            "--evals",
            "300",
            "--seed",
            SEED,
        ])
        .args(extra)
        .output()
        .expect("run pacga chaos")
}

fn session_meta(dir: &Path) -> Json {
    let text = std::fs::read_to_string(dir.join("sessions/storm/session.json"))
        .expect("session.json survives the kill");
    Json::parse(text.trim()).expect("session.json parses")
}

fn request(client: &mut Client, line: &str) -> Json {
    Json::parse(client.send_line(line).unwrap().trim()).unwrap()
}

#[test]
fn sigkill_mid_session_then_chaos_resume_continues_the_stream() {
    let dir = std::env::temp_dir().join(format!("pacga-stream-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Incarnation 1, leg 1: a clean chaos run builds the durable
    // session (close() persists without deleting).
    let daemon = Daemon::spawn(&dir);
    let leg1 = chaos_leg(&daemon.addr, &[]);
    let out1 = String::from_utf8_lossy(&leg1.stdout);
    assert!(
        leg1.status.success(),
        "leg 1 failed:\n{out1}\n{}",
        String::from_utf8_lossy(&leg1.stderr)
    );
    assert!(out1.contains("fresh session"), "leg 1 must open fresh: {out1}");
    assert!(out1.contains("invariants: held on every event"), "{out1}");
    let meta = session_meta(&dir);
    assert_eq!(meta.get("next_seq").and_then(Json::as_u64), Some(EVENTS_PER_LEG), "{meta}");
    assert!(dir.join("sessions/storm/checkpoint.ckpt").is_file());
    assert!(dir.join("sessions/storm/instance.etc").is_file());

    // Re-open the session on a held connection and land one more event,
    // then SIGKILL the daemon while that connection is live: the only
    // thing leg 2 can resume from is the per-event persist.
    let mut client =
        Client::connect_retry(daemon.addr.as_str(), Duration::from_secs(10)).expect("connect");
    let opened = request(&mut client, r#"{"type":"stream.open","session":"storm","resume":true}"#);
    assert_eq!(opened.get("type").and_then(Json::as_str), Some("stream_opened"), "{opened}");
    assert_eq!(opened.get("resumed").and_then(Json::as_bool), Some(true), "{opened}");
    assert_eq!(opened.get("next_seq").and_then(Json::as_u64), Some(EVENTS_PER_LEG), "{opened}");
    let reply = request(
        &mut client,
        &format!(
            r#"{{"type":"stream.event","seq":{EVENTS_PER_LEG},"event":{{"kind":"etc.drift","epsilon":0.25,"seed":5}}}}"#
        ),
    );
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("stream_result"), "{reply}");
    daemon.kill();
    drop(client);

    // The acknowledged event is on disk even though the daemon died
    // with the connection open.
    let meta = session_meta(&dir);
    assert_eq!(meta.get("next_seq").and_then(Json::as_u64), Some(EVENTS_PER_LEG + 1), "{meta}");

    // Incarnation 2: a ghost connection has no session (they are
    // connection-scoped), but `--resume` gets everything back.
    let daemon = Daemon::spawn(&dir);
    let mut ghost =
        Client::connect_retry(daemon.addr.as_str(), Duration::from_secs(10)).expect("connect");
    let err = request(
        &mut ghost,
        &format!(
            r#"{{"type":"stream.event","seq":{},"event":{{"kind":"machine.up","machine":0}}}}"#,
            EVENTS_PER_LEG + 1
        ),
    );
    assert_eq!(err.get("code").and_then(Json::as_str), Some("no_session"), "{err}");
    drop(ghost);

    let leg2 = chaos_leg(&daemon.addr, &["--resume", "--shutdown"]);
    let out2 = String::from_utf8_lossy(&leg2.stdout);
    assert!(
        leg2.status.success(),
        "leg 2 failed:\n{out2}\n{}",
        String::from_utf8_lossy(&leg2.stderr)
    );
    assert!(out2.contains("resumed session"), "leg 2 must resume: {out2}");
    assert!(out2.contains("invariants: held on every event"), "{out2}");

    // Sequence numbering continued without a gap across the kill:
    // 4 (leg 1) + 1 (held connection) + 4 (leg 2).
    let meta = session_meta(&dir);
    assert_eq!(meta.get("next_seq").and_then(Json::as_u64), Some(2 * EVENTS_PER_LEG + 1), "{meta}");

    // Leg 2's --shutdown drains the daemon cleanly.
    let mut child = daemon.child;
    let reaped = (0..500).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        matches!(child.try_wait(), Ok(Some(_)))
    });
    if !reaped {
        child.kill().ok();
        child.wait().ok();
        panic!("daemon did not drain after chaos --shutdown");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
