//! Fault-injected crash recovery: SIGKILL the real `pacga serve` binary
//! mid-job, restart it on the same data dir, and require the job to
//! resume from its last checkpoint and finish correctly.
//!
//! This is the PR's acceptance gate for the durable job manager:
//!
//! * the job is never stuck in `running` after a restart,
//! * generation accounting across the kill is exact (threads=1), so
//!   nothing is double-run or lost beyond the checkpoint interval,
//! * the best makespan never regresses across the restart,
//! * the final schedule is valid (right length, machines in range).

use pa_cga_service::{Client, Json};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const GENS_BUDGET: u64 = 1_200;
const CHECKPOINT_GENS: u64 = 10;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns the real binary and parses the announced address.
    fn spawn(data_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pacga"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--data-dir",
                &data_dir.to_string_lossy(),
                "--checkpoint-gens",
                &CHECKPOINT_GENS.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pacga serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read announce line");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable announce line: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect_retry(self.addr.as_str(), Duration::from_secs(10))
            .expect("connect to daemon")
    }

    /// SIGKILL — no drain, no final checkpoint, mid-write is fair game.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }
}

fn request(client: &mut Client, line: &str) -> Json {
    Json::parse(client.send_line(line).unwrap().trim()).unwrap()
}

fn job_status(client: &mut Client, job: &str) -> Json {
    request(client, &format!(r#"{{"type":"job.status","job":"{job}"}}"#))
}

#[test]
fn sigkill_mid_job_then_restart_resumes_and_finishes() {
    let dir = std::env::temp_dir().join(format!("pacga-kill-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Incarnation 1: start the job, wait for a couple of checkpoints.
    let daemon = Daemon::spawn(&dir);
    let mut client = daemon.client();
    let started = request(
        &mut client,
        &format!(
            r#"{{"type":"job.start","job":"crash-test","checkpoint_gens":{CHECKPOINT_GENS},"etc_model":{{"tasks":64,"machines":8,"seed":17}},"gens":{GENS_BUDGET},"seed":23,"threads":1,"ls":1}}"#
        ),
    );
    assert_eq!(started.get("type").unwrap().as_str(), Some("job"), "{started}");

    let deadline = Instant::now() + Duration::from_secs(60);
    let (pre_kill_gens, pre_kill_best) = loop {
        let v = job_status(&mut client, "crash-test");
        let gens = v.get("generations").and_then(Json::as_u64).unwrap_or(0);
        if gens >= 3 * CHECKPOINT_GENS {
            assert_eq!(
                v.get("state").and_then(Json::as_str),
                Some("checkpointed"),
                "checkpoints must be landing: {v}"
            );
            break (gens, v.get("best_makespan").unwrap().as_f64().unwrap());
        }
        assert!(gens < GENS_BUDGET, "job finished before the kill; budget too small for this host");
        assert!(Instant::now() < deadline, "no checkpoint within 60s: {v}");
        std::thread::sleep(Duration::from_millis(5));
    };
    drop(client);
    daemon.kill();

    // The checkpointed state survived on disk; whatever the manifest says
    // now ("running" is possible — the kill beat the next manifest
    // write), restart must resolve it.
    assert!(dir.join("jobs/crash-test/checkpoint.ckpt").is_file());

    // Incarnation 2: recovery re-queues and finishes the remainder.
    let daemon = Daemon::spawn(&dir);
    let mut client = daemon.client();
    let deadline = Instant::now() + Duration::from_secs(120);
    let done = loop {
        let v = job_status(&mut client, "crash-test");
        match v.get("state").and_then(Json::as_str) {
            Some("done") => break v,
            Some("failed") | Some("stopped") => panic!("job died instead of resuming: {v}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job did not finish after restart: {v}");
        std::thread::sleep(Duration::from_millis(20));
    };

    // Exact budget: resumed from the checkpoint (≤ one interval lost),
    // never re-run from scratch, never over-run (threads=1 is exact).
    assert_eq!(
        done.get("generations").unwrap().as_u64(),
        Some(GENS_BUDGET),
        "generation accounting must be exact across the kill: {done}"
    );
    assert!(
        done.get("evaluations").unwrap().as_u64().unwrap() > 0,
        "evaluations carried across the restart: {done}"
    );

    // Fitness is monotone at the population level: the restart must not
    // lose the best individual the pre-kill checkpoint had.
    let final_best = done.get("best_makespan").unwrap().as_f64().unwrap();
    assert!(
        final_best <= pre_kill_best + 1e-9,
        "best makespan regressed across the kill: {pre_kill_best} -> {final_best} \
         (pre-kill gens {pre_kill_gens})"
    );

    // The daemon accounted the recovery, and the log shows the seam.
    let stats = request(&mut client, r#"{"type":"stats"}"#);
    assert_eq!(stats.get("jobs_resumed").unwrap().as_u64(), Some(1), "{stats}");
    assert_eq!(stats.get("jobs_active").unwrap().as_u64(), Some(0), "{stats}");
    let log = request(&mut client, r#"{"type":"job.log","job":"crash-test","tail":1000}"#);
    let lines: Vec<&str> =
        log.get("lines").unwrap().as_arr().unwrap().iter().filter_map(Json::as_str).collect();
    assert!(lines.iter().any(|l| l.contains("recovered")), "{lines:?}");
    assert!(lines.iter().any(|l| l.contains("resume-checkpoint")), "{lines:?}");

    // The archived result is a valid schedule.
    let result =
        Json::parse(&std::fs::read_to_string(dir.join("jobs/crash-test/result.json")).unwrap())
            .unwrap();
    let assignment = result.get("assignment").unwrap().as_arr().unwrap();
    assert_eq!(assignment.len(), 64);
    assert!(assignment.iter().all(|m| m.as_u64().unwrap() < 8));
    assert_eq!(result.get("makespan").unwrap().as_f64(), Some(final_best));

    // Clean drain of the second incarnation.
    let _ = request(&mut client, r#"{"type":"shutdown"}"#);
    drop(client);
    let mut child = daemon.child;
    let reaped = (0..500).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        matches!(child.try_wait(), Ok(Some(_)))
    });
    if !reaped {
        child.kill().ok();
        child.wait().ok();
        panic!("daemon did not drain after shutdown");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A second, smaller fault: kill while still `queued`/early-`running`
/// (no checkpoint yet). Restart must start the job from scratch and
/// still finish — "no checkpoint" degrades to a fresh run, never a
/// stuck or failed job.
#[test]
fn sigkill_before_first_checkpoint_restarts_from_scratch() {
    let dir = std::env::temp_dir().join(format!("pacga-kill-fresh-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let daemon = Daemon::spawn(&dir);
    let mut client = daemon.client();
    // Huge cadence: no checkpoint will ever land before the kill.
    let started = request(
        &mut client,
        r#"{"type":"job.start","job":"early-kill","checkpoint_gens":1000000,"etc_model":{"tasks":24,"machines":3,"seed":5},"gens":60,"seed":2,"threads":1,"ls":0}"#,
    );
    assert_eq!(started.get("type").unwrap().as_str(), Some("job"), "{started}");
    drop(client);
    daemon.kill();

    let daemon = Daemon::spawn(&dir);
    let mut client = daemon.client();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let v = job_status(&mut client, "early-kill");
        match v.get("state").and_then(Json::as_str) {
            Some("done") => {
                assert_eq!(v.get("generations").unwrap().as_u64(), Some(60), "{v}");
                break;
            }
            Some("failed") | Some("stopped") => panic!("early-kill job died: {v}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job stuck after early kill: {v}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = request(&mut client, r#"{"type":"shutdown"}"#);
    drop(client);
    let mut child = daemon.child;
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
