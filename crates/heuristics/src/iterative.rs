//! Iterative (batch) heuristics: each round scans **all** unassigned tasks
//! before committing one of them (Min-min, Max-min, Sufferage). O(n²·m).

use etc_model::EtcInstance;
use scheduling::Schedule;

/// For one task, the best machine under current loads and the resulting
/// completion time, plus the second-best completion time (for sufferage).
#[derive(Debug, Clone, Copy)]
struct TaskChoice {
    machine: usize,
    completion: f64,
    second_completion: f64,
}

fn choice_for(instance: &EtcInstance, loads: &[f64], task: usize) -> TaskChoice {
    let mut best_m = 0;
    let mut best = f64::INFINITY;
    let mut second = f64::INFINITY;
    for (m, &load) in loads.iter().enumerate() {
        let c = load + instance.etc().etc_on(m, task);
        if c < best {
            second = best;
            best = c;
            best_m = m;
        } else if c < second {
            second = c;
        }
    }
    TaskChoice { machine: best_m, completion: best, second_completion: second }
}

/// Shared driver: every round, evaluate each unassigned task's best choice,
/// let `select` pick which task to commit, assign it, repeat.
fn iterative(
    instance: &EtcInstance,
    mut select: impl FnMut(&[(usize, TaskChoice)]) -> usize,
) -> Schedule {
    let n = instance.n_tasks();
    let mut loads: Vec<f64> = instance.ready_times().to_vec();
    let mut assignment = vec![0u32; n];
    let mut unassigned: Vec<usize> = (0..n).collect();
    let mut choices: Vec<(usize, TaskChoice)> = Vec::with_capacity(n);

    while !unassigned.is_empty() {
        choices.clear();
        for &t in &unassigned {
            choices.push((t, choice_for(instance, &loads, t)));
        }
        let pick = select(&choices);
        let (task, choice) = choices[pick];
        assignment[task] = choice.machine as u32;
        loads[choice.machine] += instance.etc().etc_on(choice.machine, task);
        let pos = unassigned.iter().position(|&t| t == task).expect("task is unassigned");
        unassigned.swap_remove(pos);
    }
    Schedule::from_assignment(instance, assignment)
}

/// Min-min (Ibarra & Kim 1977): commit the task whose best completion time
/// is **smallest**. The PA-CGA paper seeds one individual with this
/// schedule (Table 1).
pub fn min_min(instance: &EtcInstance) -> Schedule {
    iterative(instance, |choices| {
        let mut best = 0;
        for (i, (_, c)) in choices.iter().enumerate() {
            if c.completion < choices[best].1.completion {
                best = i;
            }
        }
        best
    })
}

/// Max-min: commit the task whose best completion time is **largest**
/// (places long tasks early, packing short ones around them).
pub fn max_min(instance: &EtcInstance) -> Schedule {
    iterative(instance, |choices| {
        let mut best = 0;
        for (i, (_, c)) in choices.iter().enumerate() {
            if c.completion > choices[best].1.completion {
                best = i;
            }
        }
        best
    })
}

/// Sufferage (Maheswaran et al. 1999): commit the task that would *suffer*
/// most — largest gap between its best and second-best completion times —
/// if it were denied its best machine.
pub fn sufferage(instance: &EtcInstance) -> Schedule {
    iterative(instance, |choices| {
        let mut best = 0;
        let mut best_suffer = f64::NEG_INFINITY;
        for (i, (_, c)) in choices.iter().enumerate() {
            let suffer = if c.second_completion.is_finite() {
                c.second_completion - c.completion
            } else {
                // Single machine: no alternative, sufferage zero.
                0.0
            };
            if suffer > best_suffer {
                best_suffer = suffer;
                best = i;
            }
        }
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etc_model::EtcMatrix;
    use scheduling::check_schedule;

    #[test]
    fn min_min_optimal_on_tiny_instance() {
        // 2 tasks, 2 machines; optimum: t0->m0 (1), t1->m1 (2), makespan 2.
        let inst = EtcInstance::new(
            "tiny",
            EtcMatrix::from_task_major(2, 2, vec![1.0, 3.0, 4.0, 2.0]),
        );
        let s = min_min(&inst);
        assert_eq!(s.machine_of(0), 0);
        assert_eq!(s.machine_of(1), 1);
        assert_eq!(s.makespan(), 2.0);
    }

    #[test]
    fn min_min_spreads_when_machine_fills_up() {
        // Uniform ETC, 4 tasks, 2 machines: min-min must balance 2/2.
        let inst = EtcInstance::new("u", EtcMatrix::from_fn(4, 2, |_, _| 1.0));
        let s = min_min(&inst);
        assert_eq!(s.count_on(0), 2);
        assert_eq!(s.count_on(1), 2);
        assert_eq!(s.makespan(), 2.0);
    }

    #[test]
    fn max_min_schedules_long_tasks_first() {
        // One long task (10) and two short (1). Max-min places the long one
        // first on its best machine, then packs shorts on the other.
        let inst = EtcInstance::new(
            "lm",
            EtcMatrix::from_task_major(3, 2, vec![10.0, 11.0, 1.0, 1.5, 1.0, 1.5]),
        );
        let s = max_min(&inst);
        assert_eq!(s.machine_of(0), 0);
        // Both short tasks avoid machine 0 (already loaded to 10).
        assert_eq!(s.machine_of(1), 1);
        assert_eq!(s.machine_of(2), 1);
    }

    #[test]
    fn sufferage_prioritizes_high_stake_tasks() {
        // Task 0: best 1 on m0, second 100  (sufferage 99).
        // Task 1: best 2 on m0, second 2.5  (sufferage 0.5).
        // Sufferage gives m0 to task 0 first; task 1 then finishes sooner
        // on m1 (2.5) than behind task 0 on m0 (1 + 2 = 3).
        let inst = EtcInstance::new(
            "sf",
            EtcMatrix::from_task_major(2, 2, vec![1.0, 100.0, 2.0, 2.5]),
        );
        let s = sufferage(&inst);
        assert_eq!(s.machine_of(0), 0);
        assert_eq!(s.machine_of(1), 1);
    }

    #[test]
    fn iterative_heuristics_valid_on_generated_instance() {
        let inst = EtcInstance::toy(30, 5);
        for s in [min_min(&inst), max_min(&inst), sufferage(&inst)] {
            assert!(check_schedule(&inst, &s).is_ok());
        }
    }

    #[test]
    fn single_machine_everything_assigned_there() {
        let inst = EtcInstance::toy(5, 1);
        for s in [min_min(&inst), max_min(&inst), sufferage(&inst)] {
            assert_eq!(s.count_on(0), 5);
        }
    }

    #[test]
    fn min_min_not_worse_than_olb_on_heterogeneous() {
        use crate::immediate::olb;
        let inst = EtcInstance::new(
            "het",
            EtcMatrix::from_fn(24, 4, |t, m| ((t * 7 + m * 13) % 29 + 1) as f64),
        );
        assert!(min_min(&inst).makespan() <= olb(&inst).makespan());
    }
}

/// Duplex (Braun et al. 2001): runs both Min-min and Max-min and keeps
/// whichever achieves the smaller makespan — hedging between the two
/// orderings' failure modes at twice the cost.
pub fn duplex(instance: &EtcInstance) -> Schedule {
    let a = min_min(instance);
    let b = max_min(instance);
    if a.makespan() <= b.makespan() {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod duplex_tests {
    use super::*;
    use scheduling::check_schedule;

    #[test]
    fn duplex_is_the_better_of_both() {
        let inst = EtcInstance::toy(30, 5);
        let d = duplex(&inst);
        let mm = min_min(&inst).makespan();
        let xm = max_min(&inst).makespan();
        assert_eq!(d.makespan(), mm.min(xm));
        assert!(check_schedule(&inst, &d).is_ok());
    }

    #[test]
    fn duplex_never_worse_than_min_min() {
        for seed in 0..5u64 {
            let inst = etc_model::EtcGenerator::new(etc_model::GeneratorParams {
                n_tasks: 40,
                n_machines: 6,
                task_heterogeneity: etc_model::Heterogeneity::High,
                machine_heterogeneity: etc_model::Heterogeneity::High,
                consistency: etc_model::Consistency::Inconsistent,
                seed,
            })
            .generate();
            assert!(duplex(&inst).makespan() <= min_min(&inst).makespan());
        }
    }
}
