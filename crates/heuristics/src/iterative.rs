//! Iterative (batch) heuristics: each round considers **all** unassigned
//! tasks before committing one of them (Min-min, Max-min, Sufferage).
//!
//! The naive formulation re-evaluates every unassigned task's best machine
//! every round — O(T²·M). But committing one task changes exactly **one**
//! machine's load, and loads only ever *increase*: a cached (best,
//! second-best) pair for a task stays exact unless the committed machine
//! *is* that task's best or second-best. The drivers here exploit that —
//! each task's choice is computed once up front (O(T·M)) and re-scanned
//! only when the machine it was pinned to changed load, collapsing the
//! common case to ~O(T·M + T²). Results are bit-identical to the naive
//! scan (kept as [`min_min_scan`] / [`max_min_scan`] / [`sufferage_scan`]
//! for A/B benchmarks and equivalence tests).

use etc_model::EtcInstance;
use scheduling::Schedule;

/// Sentinel for "no second-best machine exists" (single-machine instance).
const NO_MACHINE: usize = usize::MAX;

/// For one task, the best machine under current loads and the resulting
/// completion time, plus the second-best machine and completion time (for
/// sufferage and for cache invalidation).
#[derive(Debug, Clone, Copy)]
struct TaskChoice {
    machine: usize,
    completion: f64,
    second_machine: usize,
    second_completion: f64,
}

impl TaskChoice {
    /// How much the task would suffer if denied its best machine.
    fn suffering(&self) -> f64 {
        if self.second_completion.is_finite() {
            self.second_completion - self.completion
        } else {
            // Single machine: no alternative, sufferage zero.
            0.0
        }
    }
}

fn choice_for(instance: &EtcInstance, loads: &[f64], task: usize) -> TaskChoice {
    let mut best_m = NO_MACHINE;
    let mut best = f64::INFINITY;
    let mut second_m = NO_MACHINE;
    let mut second = f64::INFINITY;
    for (m, &load) in loads.iter().enumerate() {
        let c = load + instance.etc().etc_on(m, task);
        if c < best {
            second = best;
            second_m = best_m;
            best = c;
            best_m = m;
        } else if c < second {
            second = c;
            second_m = m;
        }
    }
    TaskChoice {
        machine: best_m,
        completion: best,
        second_machine: second_m,
        second_completion: second,
    }
}

/// Which task a round commits, given every unassigned task's cached
/// choice. All three rules are a strict first-wins arg-extremum, so the
/// indexed and scan drivers share them verbatim.
#[derive(Debug, Clone, Copy)]
enum CommitRule {
    /// Smallest best completion time first (Min-min).
    MinMin,
    /// Largest best completion time first (Max-min).
    MaxMin,
    /// Largest best-to-second-best gap first (Sufferage).
    Sufferage,
}

impl CommitRule {
    /// `true` if `candidate` strictly beats `incumbent` under the rule.
    fn better(self, candidate: &TaskChoice, incumbent: &TaskChoice) -> bool {
        match self {
            CommitRule::MinMin => candidate.completion < incumbent.completion,
            CommitRule::MaxMin => candidate.completion > incumbent.completion,
            CommitRule::Sufferage => candidate.suffering() > incumbent.suffering(),
        }
    }

    /// Whether selection reads `second_completion` (only Sufferage does).
    /// Min-min/Max-min treat it as a mere staleness certificate, which
    /// lets the driver keep it as a *lower bound* and skip most rescans.
    fn needs_exact_second(self) -> bool {
        matches!(self, CommitRule::Sufferage)
    }
}

/// The indexed driver: per-task cached choices, invalidated only when the
/// committed machine was a task's best or second-best.
///
/// Cache-freshness invariants, relying on loads only ever *growing*:
///
/// 1. `machine`/`completion` are always exact, with the scan driver's
///    tie-break (lowest machine index wins equal completions).
/// 2. For Sufferage, `second_machine`/`second_completion` are also exact.
/// 3. For Min-min/Max-min, `second_completion` is only a **lower bound**
///    on the best completion among non-`machine` machines (selection
///    never reads it). When the committed machine is a task's cached
///    best, one ETC read re-prices it: if the new completion is still
///    *strictly* below the bound, the machine provably remains the
///    unique best and the cache is patched in place — the dominant case
///    on consistent instances, where every task pins the same machine
///    and exact invalidation would degenerate into the O(T²·M) scan.
///    Equal-to-bound cases fall back to a full rescan so index ties
///    break identically to the scan driver.
fn iterative(instance: &EtcInstance, rule: CommitRule) -> Schedule {
    let n = instance.n_tasks();
    let etc = instance.etc();
    let exact_second = rule.needs_exact_second();
    let mut loads: Vec<f64> = instance.ready_times().to_vec();
    let mut assignment = vec![0u32; n];
    let mut unassigned: Vec<usize> = (0..n).collect();
    let mut choice: Vec<TaskChoice> = (0..n).map(|t| choice_for(instance, &loads, t)).collect();

    while !unassigned.is_empty() {
        let mut best = 0;
        for i in 1..unassigned.len() {
            if rule.better(&choice[unassigned[i]], &choice[unassigned[best]]) {
                best = i;
            }
        }
        let task = unassigned[best];
        let committed = choice[task];
        assignment[task] = committed.machine as u32;
        loads[committed.machine] += etc.etc_on(committed.machine, task);
        unassigned.swap_remove(best);

        for &t in &unassigned {
            let c = &mut choice[t];
            if c.machine == committed.machine {
                let cand = loads[c.machine] + etc.etc_on(c.machine, t);
                if !exact_second && cand < c.second_completion {
                    c.completion = cand; // Still the unique best (inv. 3).
                } else {
                    *c = choice_for(instance, &loads, t);
                }
            } else if exact_second && c.second_machine == committed.machine {
                *c = choice_for(instance, &loads, t);
            }
            // Any other machine growing cannot unseat an exact best, and
            // only raises the true second — the cached bound stays valid.
        }
    }
    Schedule::from_assignment(instance, assignment)
}

/// The pre-index driver, frozen for A/B benchmarking and equivalence
/// tests: every round recomputes every unassigned task's choice from
/// scratch — O(T²·M).
fn iterative_scan(instance: &EtcInstance, rule: CommitRule) -> Schedule {
    let n = instance.n_tasks();
    let mut loads: Vec<f64> = instance.ready_times().to_vec();
    let mut assignment = vec![0u32; n];
    let mut unassigned: Vec<usize> = (0..n).collect();
    let mut choices: Vec<(usize, TaskChoice)> = Vec::with_capacity(n);

    while !unassigned.is_empty() {
        choices.clear();
        for &t in &unassigned {
            choices.push((t, choice_for(instance, &loads, t)));
        }
        let mut pick = 0;
        for i in 1..choices.len() {
            if rule.better(&choices[i].1, &choices[pick].1) {
                pick = i;
            }
        }
        let (task, choice) = choices[pick];
        assignment[task] = choice.machine as u32;
        loads[choice.machine] += instance.etc().etc_on(choice.machine, task);
        let pos = unassigned.iter().position(|&t| t == task).expect("task is unassigned");
        unassigned.swap_remove(pos);
    }
    Schedule::from_assignment(instance, assignment)
}

/// Min-min (Ibarra & Kim 1977): commit the task whose best completion time
/// is **smallest**. The PA-CGA paper seeds one individual with this
/// schedule (Table 1).
pub fn min_min(instance: &EtcInstance) -> Schedule {
    iterative(instance, CommitRule::MinMin)
}

/// Max-min: commit the task whose best completion time is **largest**
/// (places long tasks early, packing short ones around them).
pub fn max_min(instance: &EtcInstance) -> Schedule {
    iterative(instance, CommitRule::MaxMin)
}

/// Sufferage (Maheswaran et al. 1999): commit the task that would *suffer*
/// most — largest gap between its best and second-best completion times —
/// if it were denied its best machine.
pub fn sufferage(instance: &EtcInstance) -> Schedule {
    iterative(instance, CommitRule::Sufferage)
}

/// [`min_min`] via the retired O(T²·M) full-rescan driver. Kept only to
/// price the indexed driver against (`benches/heuristics.rs`) and to pin
/// bit-identical results in tests.
pub fn min_min_scan(instance: &EtcInstance) -> Schedule {
    iterative_scan(instance, CommitRule::MinMin)
}

/// [`max_min`] via the retired full-rescan driver (see [`min_min_scan`]).
pub fn max_min_scan(instance: &EtcInstance) -> Schedule {
    iterative_scan(instance, CommitRule::MaxMin)
}

/// [`sufferage`] via the retired full-rescan driver (see [`min_min_scan`]).
pub fn sufferage_scan(instance: &EtcInstance) -> Schedule {
    iterative_scan(instance, CommitRule::Sufferage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etc_model::EtcMatrix;
    use scheduling::check_schedule;

    #[test]
    fn min_min_optimal_on_tiny_instance() {
        // 2 tasks, 2 machines; optimum: t0->m0 (1), t1->m1 (2), makespan 2.
        let inst =
            EtcInstance::new("tiny", EtcMatrix::from_task_major(2, 2, vec![1.0, 3.0, 4.0, 2.0]));
        let s = min_min(&inst);
        assert_eq!(s.machine_of(0), 0);
        assert_eq!(s.machine_of(1), 1);
        assert_eq!(s.makespan(), 2.0);
    }

    #[test]
    fn min_min_spreads_when_machine_fills_up() {
        // Uniform ETC, 4 tasks, 2 machines: min-min must balance 2/2.
        let inst = EtcInstance::new("u", EtcMatrix::from_fn(4, 2, |_, _| 1.0));
        let s = min_min(&inst);
        assert_eq!(s.count_on(0), 2);
        assert_eq!(s.count_on(1), 2);
        assert_eq!(s.makespan(), 2.0);
    }

    #[test]
    fn max_min_schedules_long_tasks_first() {
        // One long task (10) and two short (1). Max-min places the long one
        // first on its best machine, then packs shorts on the other.
        let inst = EtcInstance::new(
            "lm",
            EtcMatrix::from_task_major(3, 2, vec![10.0, 11.0, 1.0, 1.5, 1.0, 1.5]),
        );
        let s = max_min(&inst);
        assert_eq!(s.machine_of(0), 0);
        // Both short tasks avoid machine 0 (already loaded to 10).
        assert_eq!(s.machine_of(1), 1);
        assert_eq!(s.machine_of(2), 1);
    }

    #[test]
    fn sufferage_prioritizes_high_stake_tasks() {
        // Task 0: best 1 on m0, second 100  (sufferage 99).
        // Task 1: best 2 on m0, second 2.5  (sufferage 0.5).
        // Sufferage gives m0 to task 0 first; task 1 then finishes sooner
        // on m1 (2.5) than behind task 0 on m0 (1 + 2 = 3).
        let inst =
            EtcInstance::new("sf", EtcMatrix::from_task_major(2, 2, vec![1.0, 100.0, 2.0, 2.5]));
        let s = sufferage(&inst);
        assert_eq!(s.machine_of(0), 0);
        assert_eq!(s.machine_of(1), 1);
    }

    #[test]
    fn iterative_heuristics_valid_on_generated_instance() {
        let inst = EtcInstance::toy(30, 5);
        for s in [min_min(&inst), max_min(&inst), sufferage(&inst)] {
            assert!(check_schedule(&inst, &s).is_ok());
        }
    }

    #[test]
    fn single_machine_everything_assigned_there() {
        let inst = EtcInstance::toy(5, 1);
        for s in [min_min(&inst), max_min(&inst), sufferage(&inst)] {
            assert_eq!(s.count_on(0), 5);
        }
    }

    #[test]
    fn indexed_drivers_bit_identical_to_scan_reference() {
        // The cached-choice drivers must reproduce the retired full-rescan
        // drivers exactly — same assignment, same CT bits — across
        // consistency classes and with non-zero ready times.
        for seed in 0..8u64 {
            let inst = etc_model::EtcGenerator::new(etc_model::GeneratorParams {
                n_tasks: 40,
                n_machines: 6,
                task_heterogeneity: etc_model::Heterogeneity::High,
                machine_heterogeneity: etc_model::Heterogeneity::High,
                consistency: if seed % 2 == 0 {
                    etc_model::Consistency::Inconsistent
                } else {
                    etc_model::Consistency::Consistent
                },
                seed,
            })
            .generate();
            assert_eq!(min_min(&inst), min_min_scan(&inst), "min-min seed {seed}");
            assert_eq!(max_min(&inst), max_min_scan(&inst), "max-min seed {seed}");
            assert_eq!(sufferage(&inst), sufferage_scan(&inst), "sufferage seed {seed}");
        }
        let etc = EtcMatrix::from_fn(30, 4, |t, m| ((t * 5 + m * 11) % 17 + 1) as f64);
        let inst = EtcInstance::with_ready_times("rt", etc, vec![3.0, 0.0, 7.5, 1.0]);
        assert_eq!(min_min(&inst), min_min_scan(&inst));
        assert_eq!(max_min(&inst), max_min_scan(&inst));
        assert_eq!(sufferage(&inst), sufferage_scan(&inst));
    }

    #[test]
    fn min_min_not_worse_than_olb_on_heterogeneous() {
        use crate::immediate::olb;
        let inst = EtcInstance::new(
            "het",
            EtcMatrix::from_fn(24, 4, |t, m| ((t * 7 + m * 13) % 29 + 1) as f64),
        );
        assert!(min_min(&inst).makespan() <= olb(&inst).makespan());
    }
}

/// Duplex (Braun et al. 2001): runs both Min-min and Max-min and keeps
/// whichever achieves the smaller makespan — hedging between the two
/// orderings' failure modes at twice the cost.
pub fn duplex(instance: &EtcInstance) -> Schedule {
    let a = min_min(instance);
    let b = max_min(instance);
    if a.makespan() <= b.makespan() {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod duplex_tests {
    use super::*;
    use scheduling::check_schedule;

    #[test]
    fn duplex_is_the_better_of_both() {
        let inst = EtcInstance::toy(30, 5);
        let d = duplex(&inst);
        let mm = min_min(&inst).makespan();
        let xm = max_min(&inst).makespan();
        assert_eq!(d.makespan(), mm.min(xm));
        assert!(check_schedule(&inst, &d).is_ok());
    }

    #[test]
    fn duplex_never_worse_than_min_min() {
        for seed in 0..5u64 {
            let inst = etc_model::EtcGenerator::new(etc_model::GeneratorParams {
                n_tasks: 40,
                n_machines: 6,
                task_heterogeneity: etc_model::Heterogeneity::High,
                machine_heterogeneity: etc_model::Heterogeneity::High,
                consistency: etc_model::Consistency::Inconsistent,
                seed,
            })
            .generate();
            assert!(duplex(&inst).makespan() <= min_min(&inst).makespan());
        }
    }
}
