//! # Deterministic list heuristics for ETC scheduling
//!
//! The classic static mapping heuristics of Braun et al. (JPDC 2001) and
//! Ibarra & Kim (JACM 1977). The PA-CGA paper uses **Min-min** to seed one
//! individual of the population (Table 1) and points to these heuristics
//! as the right tool for near-homogeneous instances (§4.2).
//!
//! All heuristics are deterministic given the instance (ties break to the
//! lowest index), run in at most O(n²·m), and return a fully valid
//! [`Schedule`].
//!
//! | Heuristic | Strategy |
//! |---|---|
//! | [`olb`] | next task → machine that becomes ready soonest (ignores ETC) |
//! | [`met`] | next task → machine with minimal execution time (ignores load) |
//! | [`mct`] | next task → machine with minimal completion time |
//! | [`min_min`] | repeatedly schedule the task with the *smallest* best completion time |
//! | [`max_min`] | repeatedly schedule the task with the *largest* best completion time |
//! | [`sufferage`] | repeatedly schedule the task that would *suffer* most if denied its best machine |
//! | [`duplex`] | better of Min-min and Max-min |

pub mod immediate;
pub mod iterative;

pub use immediate::{mct, met, olb};
pub use iterative::{
    duplex, max_min, max_min_scan, min_min, min_min_scan, sufferage, sufferage_scan,
};

use etc_model::EtcInstance;
use scheduling::Schedule;

/// Name-indexed access to every heuristic, for harnesses and CLIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Opportunistic Load Balancing.
    Olb,
    /// Minimum Execution Time.
    Met,
    /// Minimum Completion Time.
    Mct,
    /// Min-min (Ibarra & Kim) — the paper's seeding heuristic.
    MinMin,
    /// Max-min.
    MaxMin,
    /// Sufferage (Maheswaran et al.).
    Sufferage,
    /// Duplex: better of Min-min and Max-min.
    Duplex,
}

impl Heuristic {
    /// Every implemented heuristic.
    pub fn all() -> [Heuristic; 7] {
        [
            Heuristic::Olb,
            Heuristic::Met,
            Heuristic::Mct,
            Heuristic::MinMin,
            Heuristic::MaxMin,
            Heuristic::Sufferage,
            Heuristic::Duplex,
        ]
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::Olb => "olb",
            Heuristic::Met => "met",
            Heuristic::Mct => "mct",
            Heuristic::MinMin => "min-min",
            Heuristic::MaxMin => "max-min",
            Heuristic::Sufferage => "sufferage",
            Heuristic::Duplex => "duplex",
        }
    }

    /// Runs the heuristic on an instance.
    pub fn schedule(self, instance: &EtcInstance) -> Schedule {
        match self {
            Heuristic::Olb => olb(instance),
            Heuristic::Met => met(instance),
            Heuristic::Mct => mct(instance),
            Heuristic::MinMin => min_min(instance),
            Heuristic::MaxMin => max_min(instance),
            Heuristic::Sufferage => sufferage(instance),
            Heuristic::Duplex => duplex(instance),
        }
    }
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scheduling::check_schedule;

    #[test]
    fn all_heuristics_produce_valid_schedules() {
        let inst = EtcInstance::toy(12, 4);
        for h in Heuristic::all() {
            let s = h.schedule(&inst);
            assert!(check_schedule(&inst, &s).is_ok(), "{h} invalid");
            assert!(s.makespan() > 0.0, "{h} zero makespan");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Heuristic::all().iter().map(|h| h.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
