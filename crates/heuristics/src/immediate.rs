//! Immediate-mode heuristics: one pass over the tasks in index order, each
//! task mapped as soon as it is considered (OLB, MET, MCT).

use etc_model::EtcInstance;
use scheduling::Schedule;

/// Index of the minimum value, ties to the lowest index.
fn argmin(values: impl Iterator<Item = f64>) -> usize {
    let mut best = 0;
    let mut best_v = f64::INFINITY;
    for (i, v) in values.enumerate() {
        if v < best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Shared driver: grows partial loads task by task, choosing each task's
/// machine with `pick(task, loads)`.
fn immediate(instance: &EtcInstance, mut pick: impl FnMut(usize, &[f64]) -> usize) -> Schedule {
    let mut loads: Vec<f64> = instance.ready_times().to_vec();
    let mut assignment = Vec::with_capacity(instance.n_tasks());
    for t in 0..instance.n_tasks() {
        let m = pick(t, &loads);
        loads[m] += instance.etc().etc_on(m, t);
        assignment.push(m as u32);
    }
    Schedule::from_assignment(instance, assignment)
}

/// Opportunistic Load Balancing: each task goes to the machine that becomes
/// available soonest, ignoring how long the task runs there.
pub fn olb(instance: &EtcInstance) -> Schedule {
    immediate(instance, |_t, loads| argmin(loads.iter().copied()))
}

/// Minimum Execution Time: each task goes to its fastest machine, ignoring
/// current load (can badly overload a uniformly fast machine on consistent
/// instances — expected, and visible in the example output).
pub fn met(instance: &EtcInstance) -> Schedule {
    immediate(instance, |t, loads| argmin((0..loads.len()).map(|m| instance.etc().etc_on(m, t))))
}

/// Minimum Completion Time: each task goes to the machine where it would
/// *finish* soonest given current loads.
pub fn mct(instance: &EtcInstance) -> Schedule {
    immediate(instance, |t, loads| {
        argmin((0..loads.len()).map(|m| loads[m] + instance.etc().etc_on(m, t)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etc_model::EtcMatrix;
    use scheduling::check_schedule;

    /// 2 machines, machine 1 always 10× slower.
    fn skewed() -> EtcInstance {
        EtcInstance::new(
            "skew",
            EtcMatrix::from_fn(6, 2, |t, m| (t + 1) as f64 * if m == 0 { 1.0 } else { 10.0 }),
        )
    }

    /// 2 machines, machine 1 only 2× slower — offloading pays off.
    fn mildly_skewed() -> EtcInstance {
        EtcInstance::new(
            "skew2",
            EtcMatrix::from_fn(6, 2, |t, m| (t + 1) as f64 * if m == 0 { 1.0 } else { 2.0 }),
        )
    }

    #[test]
    fn met_puts_everything_on_fastest_machine() {
        let inst = skewed();
        let s = met(&inst);
        for t in 0..6 {
            assert_eq!(s.machine_of(t), 0);
        }
        assert!(check_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn olb_alternates_on_uniform_etc() {
        let inst = EtcInstance::new("u", EtcMatrix::from_fn(4, 2, |_, _| 1.0));
        let s = olb(&inst);
        assert_eq!(s.count_on(0), 2);
        assert_eq!(s.count_on(1), 2);
    }

    #[test]
    fn mct_beats_met_when_offloading_pays() {
        // MET piles everything on machine 0 (makespan 21); MCT offloads
        // task 3 to machine 1 and finishes at 17.
        let inst = mildly_skewed();
        assert_eq!(met(&inst).makespan(), 21.0);
        assert_eq!(mct(&inst).makespan(), 17.0);
    }

    #[test]
    fn mct_single_task_optimal() {
        let inst = EtcInstance::new("one", EtcMatrix::from_task_major(1, 3, vec![5.0, 2.0, 9.0]));
        let s = mct(&inst);
        assert_eq!(s.machine_of(0), 1);
        assert_eq!(s.makespan(), 2.0);
    }

    #[test]
    fn olb_ignores_etc() {
        // Machine 0 is free but terrible for task 0; OLB still uses it.
        let inst = EtcInstance::new("bad", EtcMatrix::from_task_major(1, 2, vec![100.0, 1.0]));
        let s = olb(&inst);
        assert_eq!(s.machine_of(0), 0);
    }

    #[test]
    fn olb_respects_ready_times() {
        // Machine 0 busy until t=50: first task must go to machine 1.
        let etc = EtcMatrix::from_task_major(1, 2, vec![1.0, 1.0]);
        let inst = EtcInstance::with_ready_times("rt", etc, vec![50.0, 0.0]);
        let s = olb(&inst);
        assert_eq!(s.machine_of(0), 1);
    }

    #[test]
    fn all_remain_valid_on_larger_instance() {
        let inst = EtcInstance::toy(40, 7);
        for s in [olb(&inst), met(&inst), mct(&inst)] {
            assert!(check_schedule(&inst, &s).is_ok());
        }
    }
}
