//! Property tests on the dynamic-grid event layer: any sequence of
//! events leaves the world pricable (`check_schedule` passes on the
//! sub-instance), repair never places a task on a down machine, the
//! local/global gene mappings round-trip, rejected events mutate
//! nothing, and drift is bit-deterministic.

use etc_model::{Consistency, EtcGenerator, EtcInstance, GeneratorParams, Heterogeneity};
use grid_sim::{
    DynamicGrid, EtcDelta, GridEvent, MctRescheduler, NoiseModel, PaCgaRescheduler, Rescheduler,
};
use proptest::prelude::*;
use scheduling::{check_schedule, Schedule};

const N_TASKS: usize = 20;
const N_MACHINES: usize = 5;

fn instance(seed: u64) -> EtcInstance {
    EtcGenerator::new(GeneratorParams {
        n_tasks: N_TASKS,
        n_machines: N_MACHINES,
        task_heterogeneity: Heterogeneity::High,
        machine_heterogeneity: Heterogeneity::High,
        consistency: Consistency::Inconsistent,
        seed,
    })
    .generate()
}

/// A compact event descriptor the strategy can enumerate; realized
/// against the live world so indices stay plausible (but not always
/// valid — invalid realizations exercise the rejection path).
#[derive(Debug, Clone)]
enum Ev {
    Down(usize),
    Up(usize),
    Drift(u8, u64),
    Deltas(usize, usize, u8),
    Arrive(u64),
    Cancel(usize),
}

fn event_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0..N_MACHINES * 2).prop_map(Ev::Down),
        (0..N_MACHINES * 2).prop_map(Ev::Up),
        (1u8..10, 0u64..u64::MAX).prop_map(|(e, s)| Ev::Drift(e, s)),
        (0..N_TASKS * 2, 0..N_MACHINES * 2, 1u8..30).prop_map(|(t, m, f)| Ev::Deltas(t, m, f)),
        (0u64..u64::MAX).prop_map(Ev::Arrive),
        (0..N_TASKS * 2).prop_map(Ev::Cancel),
    ]
}

/// Realizes a descriptor against the current world dimensions.
fn realize(ev: &Ev, grid: &DynamicGrid) -> GridEvent {
    let n_machines = grid.base().n_machines();
    match *ev {
        Ev::Down(m) => GridEvent::MachineDown { machine: m },
        Ev::Up(m) => GridEvent::MachineUp { machine: m },
        Ev::Drift(e, s) => GridEvent::EtcDrift { epsilon: e as f64 / 16.0, seed: s },
        Ev::Deltas(t, m, f) => GridEvent::EtcDeltas {
            deltas: vec![EtcDelta { task: t, machine: m, factor: f as f64 / 8.0 }],
        },
        Ev::Arrive(seed) => GridEvent::TaskArrive {
            etc: (0..n_machines).map(|m| 1.0 + ((seed >> (m % 16)) % 97) as f64).collect(),
        },
        Ev::Cancel(t) => GridEvent::TaskCancel { task: t },
    }
}

/// A valid global assignment for the current world: every task on the
/// first alive machine.
fn aligned_assignment(grid: &DynamicGrid) -> Vec<u32> {
    let m = grid.alive()[0] as u32;
    vec![m; grid.base().n_tasks()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The workhorse: any event stream, applied with per-event repair,
    /// keeps every schedule invariant intact.
    #[test]
    fn event_streams_preserve_schedule_invariants(
        seed in 0u64..20,
        evs in proptest::collection::vec(event_strategy(), 1..24),
    ) {
        let mut grid = DynamicGrid::new(instance(seed));
        let mut assignment = aligned_assignment(&grid);

        for ev in &evs {
            let event = realize(ev, &grid);
            let version_before = grid.version();
            let down_before = grid.down_machines();
            match grid.apply(&event) {
                Err(_) => {
                    // Rejected events must be no-ops.
                    prop_assert_eq!(grid.version(), version_before);
                    prop_assert_eq!(grid.down_machines(), down_before);
                    continue;
                }
                Ok(remap) => {
                    prop_assert_eq!(grid.version(), version_before + 1);
                    assignment = grid.repair_assignment(&assignment, remap, &MctRescheduler);
                }
            }

            // Repaired assignment: right length, only alive machines.
            prop_assert_eq!(assignment.len(), grid.base().n_tasks());
            for &g in &assignment {
                prop_assert!(!grid.is_down(g as usize), "task on down machine {g}");
                prop_assert!((g as usize) < grid.base().n_machines());
            }

            // The sub-instance prices it: canonical CTs and the tracked
            // argmax must agree with the full fold, and the full
            // invariant suite must pass.
            let sub = grid.sub_instance();
            prop_assert_eq!(sub.n_machines(), grid.n_alive());
            prop_assert_eq!(sub.n_tasks(), grid.base().n_tasks());
            let local = grid.to_local(&assignment);
            prop_assert!(local.is_some(), "repaired assignment must localize");
            if let Some(local) = local {
                // Local/global mapping round-trips exactly.
                let back = grid.to_global(&local);
                prop_assert_eq!(back.as_deref(), Some(assignment.as_slice()));

                let schedule = Schedule::from_assignment(&sub, local);
                prop_assert!(check_schedule(&sub, &schedule).is_ok());
                prop_assert_eq!(
                    schedule.makespan().to_bits(),
                    schedule.makespan_full().to_bits(),
                    "tracked argmax diverged from the O(M) fold"
                );
                prop_assert!(schedule.makespan().is_finite() && schedule.makespan() > 0.0);
            }

            // The ETC matrix itself stays physical after drift/deltas.
            for t in 0..sub.n_tasks() {
                for m in 0..sub.n_machines() {
                    let v = sub.etc().etc(t, m);
                    prop_assert!(v.is_finite() && v > 0.0, "etc({t},{m}) = {v}");
                }
            }
        }
    }

    /// The same event stream applied twice produces bit-identical
    /// worlds — the contract the chaos harness's client-side mirror
    /// stands on.
    #[test]
    fn event_application_is_deterministic(
        seed in 0u64..20,
        evs in proptest::collection::vec(event_strategy(), 1..16),
    ) {
        let mut a = DynamicGrid::new(instance(seed));
        let mut b = DynamicGrid::new(instance(seed));
        for ev in &evs {
            let ra = a.apply(&realize(ev, &a));
            let rb = b.apply(&realize(ev, &b));
            prop_assert_eq!(ra.is_ok(), rb.is_ok());
        }
        prop_assert_eq!(a.version(), b.version());
        prop_assert_eq!(a.down_machines(), b.down_machines());
        let (sa, sb) = (a.sub_instance(), b.sub_instance());
        prop_assert_eq!(sa.n_tasks(), sb.n_tasks());
        for t in 0..sa.n_tasks() {
            for m in 0..sa.n_machines() {
                prop_assert_eq!(sa.etc().etc(t, m).to_bits(), sb.etc().etc(t, m).to_bits());
            }
        }
    }

    /// Noise realization keeps the matrix physical and within the
    /// advertised half-width band.
    #[test]
    fn noise_realization_stays_in_band(
        seed in 0u64..20,
        noise_seed in 0u64..u64::MAX,
        eps_16ths in 1u8..15,
    ) {
        let epsilon = eps_16ths as f64 / 16.0;
        let base = instance(seed);
        let noisy = NoiseModel::new(epsilon, noise_seed).realize(&base);
        prop_assert_eq!(noisy.n_tasks(), base.n_tasks());
        prop_assert_eq!(noisy.n_machines(), base.n_machines());
        for t in 0..base.n_tasks() {
            for m in 0..base.n_machines() {
                let (b, n) = (base.etc().etc(t, m), noisy.etc().etc(t, m));
                prop_assert!(n.is_finite() && n > 0.0);
                prop_assert!(n >= b * (1.0 - epsilon) - 1e-9, "below band: {n} vs {b}");
                prop_assert!(n <= b * (1.0 + epsilon) + 1e-9, "above band: {n} vs {b}");
            }
        }
    }

    /// Both reschedulers only ever place orphans on alive machines and
    /// return one placement per orphan.
    #[test]
    fn reschedulers_place_only_on_alive_machines(
        seed in 0u64..10,
        downs in proptest::collection::vec(0..N_MACHINES, 1..N_MACHINES - 1),
        orphan_mask in 1u32..(1 << N_TASKS),
    ) {
        let inst = instance(seed);
        // `downs` holds at most N_MACHINES - 2 machines, so at least
        // two always survive.
        let mut alive: Vec<usize> = (0..N_MACHINES).collect();
        alive.retain(|m| !downs.contains(m));
        prop_assert!(!alive.is_empty());
        let orphans: Vec<usize> =
            (0..N_TASKS).filter(|t| orphan_mask & (1 << t) != 0).collect();
        let ready = vec![0.0; N_MACHINES];

        let policies: [&dyn Rescheduler; 2] = [
            &MctRescheduler,
            &PaCgaRescheduler { evaluations: 64, grid_side: 2, ls_iterations: 1, seed: 5 },
        ];
        for policy in policies {
            let placed = policy.reschedule(&inst, &orphans, &alive, &ready);
            prop_assert_eq!(placed.len(), orphans.len(), "{}", policy.name());
            for &m in &placed {
                prop_assert!(alive.contains(&m), "{} placed on dead machine {m}", policy.name());
            }
        }
    }
}
