//! Property tests on the discrete-event simulator: conservation (every
//! task completes exactly once), failure semantics (nothing finishes on a
//! machine after it dropped), and fidelity (no failures ⇒ simulated
//! makespan equals the schedule's cached makespan).

use etc_model::{Consistency, EtcGenerator, EtcInstance, GeneratorParams, Heterogeneity};
use grid_sim::{FailureTrace, MctRescheduler, Simulator};
use proptest::prelude::*;
use scheduling::Schedule;

const N_TASKS: usize = 30;
const N_MACHINES: usize = 6;

fn instance(seed: u64) -> EtcInstance {
    EtcGenerator::new(GeneratorParams {
        n_tasks: N_TASKS,
        n_machines: N_MACHINES,
        task_heterogeneity: Heterogeneity::High,
        machine_heterogeneity: Heterogeneity::Low,
        consistency: Consistency::Inconsistent,
        seed,
    })
    .generate()
}

/// Failure times as fractions of the clean makespan; at most
/// `N_MACHINES - 1` machines fail so the workload can always finish.
fn failures_strategy() -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0..N_MACHINES, 0.01f64..0.95), 0..N_MACHINES - 1).prop_map(
        |mut v| {
            v.sort_by_key(|&(m, _)| m);
            v.dedup_by_key(|&mut (m, _)| m);
            v
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn failure_free_simulation_is_exact(
        seed in 0u64..30,
        assignment in proptest::collection::vec(0u32..N_MACHINES as u32, N_TASKS),
    ) {
        let inst = instance(seed);
        let s = Schedule::from_assignment(&inst, assignment);
        let report = Simulator::new(&inst).run(&s, &MctRescheduler);
        prop_assert_eq!(report.makespan, s.makespan());
        prop_assert!(report.validate().is_ok());
        prop_assert_eq!(report.lost_work, 0.0);
        prop_assert_eq!(report.reschedules, 0);
        // Every task ran on its assigned machine.
        for t in 0..N_TASKS {
            prop_assert_eq!(report.tasks[t].machine, s.machine_of(t));
        }
    }

    #[test]
    fn failures_preserve_conservation_and_semantics(
        seed in 0u64..30,
        assignment in proptest::collection::vec(0u32..N_MACHINES as u32, N_TASKS),
        fail_fracs in failures_strategy(),
    ) {
        let inst = instance(seed);
        let s = Schedule::from_assignment(&inst, assignment);
        let clean = s.makespan();
        let events: Vec<(usize, f64)> =
            fail_fracs.iter().map(|&(m, f)| (m, f * clean)).collect();
        let trace = FailureTrace::new(events.clone());
        let report = Simulator::with_failures(&inst, trace).run(&s, &MctRescheduler);

        prop_assert!(report.validate().is_ok());
        prop_assert_eq!(report.tasks.len(), N_TASKS, "conservation");
        prop_assert!(report.lost_work >= 0.0);
        prop_assert!(report.makespan.is_finite());

        // Nothing may finish on a machine after it dropped, and nothing
        // may run on a dead machine at all past its drop time.
        for (t, r) in report.tasks.iter().enumerate() {
            if let Some((_, tf)) = events.iter().find(|&&(m, _)| m == r.machine) {
                prop_assert!(
                    r.finish <= *tf + 1e-9,
                    "task {t} finished at {} on machine that died at {tf}",
                    r.finish
                );
            }
        }

        // Note: failures do NOT always degrade the makespan — rescheduling
        // a poor random schedule's orphans through MCT can out-balance the
        // original assignment. The invariants above (conservation, dead
        // machines stay dead, finite result) are the real guarantees.
    }

    #[test]
    fn retried_tasks_have_positive_attempts_iff_aborted(
        seed in 0u64..10,
        assignment in proptest::collection::vec(0u32..N_MACHINES as u32, N_TASKS),
        fail_fracs in failures_strategy(),
    ) {
        let inst = instance(seed);
        let s = Schedule::from_assignment(&inst, assignment);
        let clean = s.makespan();
        let events: Vec<(usize, f64)> =
            fail_fracs.iter().map(|&(m, f)| (m, f * clean)).collect();
        let report =
            Simulator::with_failures(&inst, FailureTrace::new(events)).run(&s, &MctRescheduler);
        let retried = report.retried_tasks();
        if report.lost_work == 0.0 {
            prop_assert_eq!(retried, 0, "no lost work but {} retries", retried);
        } else {
            prop_assert!(retried > 0, "lost work {} without retries", report.lost_work);
        }
    }
}
