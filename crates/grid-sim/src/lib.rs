//! # Grid execution simulator
//!
//! The PA-CGA paper schedules *statically*: it assumes the ETC estimates
//! hold and the grid stays up. Its problem statement (§2.1), however,
//! describes a **dynamic environment** — machines "could dynamically be
//! added/dropped from the grid", tasks run non-preemptively "unless the
//! resource drops", and machines carry **ready times** from previously
//! assigned work.
//!
//! This crate closes that loop with a discrete-event simulator:
//!
//! * [`simulator::Simulator`] executes a static [`scheduling::Schedule`]
//!   against an [`etc_model::EtcInstance`] and reports per-task timelines.
//!   Without failures the simulated makespan equals the schedule's cached
//!   makespan exactly — an end-to-end validation of the representation.
//! * [`failures::FailureTrace`] injects machine drop events; the running
//!   task of a dropped machine is lost and must be re-run, pending tasks
//!   are orphaned.
//! * [`reschedule`] supplies rescheduling policies invoked at failure
//!   time: the cheap [`reschedule::MctRescheduler`] and the
//!   [`reschedule::PaCgaRescheduler`] that re-optimizes the remaining work
//!   with the paper's own algorithm, using machine **ready times** to
//!   carry committed load — exactly the field the ETC model reserves for
//!   this purpose.
//! * [`batch`] drives multi-batch arrival scenarios (the "batch scheduling
//!   in grids" mode of the title): each arriving batch is scheduled
//!   against the ready times left by its predecessors.
//! * [`events`] is the *session* counterpart the schedule-stream service
//!   builds on: a [`events::DynamicGrid`] holds the authoritative world
//!   state between client-injected [`events::GridEvent`]s (machine
//!   down/up, ETC drift, task arrival/cancellation) and repairs stale
//!   assignments onto the surviving machines.

pub mod batch;
pub mod events;
pub mod failures;
pub mod noise;
pub mod report;
pub mod reschedule;
pub mod simulator;

pub use batch::{BatchArrival, BatchSimulator};
pub use events::{DynamicGrid, EtcDelta, EventError, GridEvent, TaskRemap};
pub use failures::FailureTrace;
pub use noise::{run_under_noise, NoiseModel};
pub use report::{SimReport, TaskRecord};
pub use reschedule::{MctRescheduler, PaCgaRescheduler, Rescheduler};
pub use simulator::Simulator;
