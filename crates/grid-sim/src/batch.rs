//! Multi-batch arrivals — the "batch scheduling in grids" mode.
//!
//! Tasks arrive in batches over time (parameter-sweep users submitting
//! jobs); each batch is scheduled *on arrival* against the machine ready
//! times left by earlier batches. Any [`Rescheduler`] doubles as the
//! per-batch scheduling policy (same signature: tasks + machines + ready
//! times → placement), so MCT and PA-CGA can be compared directly.

use crate::reschedule::Rescheduler;
use etc_model::EtcInstance;
use serde::{Deserialize, Serialize};

/// One batch: an arrival time and the task ids it contains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchArrival {
    /// When the batch is submitted.
    pub time: f64,
    /// Task ids (indices into the instance) in this batch.
    pub tasks: Vec<usize>,
}

/// Per-batch outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Submission time.
    pub arrival: f64,
    /// When the batch's last task finished.
    pub completion: f64,
    /// `completion − arrival`: the user-visible batch latency.
    pub latency: f64,
}

/// Whole-run outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Stats per batch, in arrival order.
    pub batches: Vec<BatchStats>,
    /// Time the final task finished.
    pub makespan: f64,
    /// Final per-machine availability times.
    pub machine_free_at: Vec<f64>,
}

impl BatchReport {
    /// Mean batch latency.
    pub fn mean_latency(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.latency).sum::<f64>() / self.batches.len() as f64
    }
}

/// Drives a batch-arrival scenario over an instance.
#[derive(Debug, Clone)]
pub struct BatchSimulator<'a> {
    instance: &'a EtcInstance,
    batches: Vec<BatchArrival>,
}

impl<'a> BatchSimulator<'a> {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are unsorted, a task id is out of range or
    /// appears twice, or a batch is empty.
    pub fn new(instance: &'a EtcInstance, batches: Vec<BatchArrival>) -> Self {
        let mut seen = vec![false; instance.n_tasks()];
        let mut last = 0.0f64;
        for (i, b) in batches.iter().enumerate() {
            assert!(b.time.is_finite() && b.time >= last, "batch {i} arrival out of order");
            assert!(!b.tasks.is_empty(), "batch {i} is empty");
            last = b.time;
            for &t in &b.tasks {
                assert!(t < instance.n_tasks(), "batch {i}: task {t} out of range");
                assert!(!seen[t], "task {t} appears in two batches");
                seen[t] = true;
            }
        }
        Self { instance, batches }
    }

    /// Splits all instance tasks into `n_batches` equal contiguous batches
    /// arriving `interval` apart (starting at 0).
    pub fn equal_batches(instance: &'a EtcInstance, n_batches: usize, interval: f64) -> Self {
        assert!(n_batches > 0 && n_batches <= instance.n_tasks(), "bad batch count");
        let n = instance.n_tasks();
        let base = n / n_batches;
        let extra = n % n_batches;
        let mut batches = Vec::with_capacity(n_batches);
        let mut start = 0;
        for b in 0..n_batches {
            let size = base + usize::from(b < extra);
            batches.push(BatchArrival {
                time: b as f64 * interval,
                tasks: (start..start + size).collect(),
            });
            start += size;
        }
        Self::new(instance, batches)
    }

    /// Runs the scenario, scheduling each batch with `policy` on arrival.
    pub fn run(&self, policy: &dyn Rescheduler) -> BatchReport {
        let instance = self.instance;
        let n_machines = instance.n_machines();
        let all: Vec<usize> = (0..n_machines).collect();
        let mut free_at: Vec<f64> = instance.ready_times().to_vec();
        let mut stats = Vec::with_capacity(self.batches.len());

        for batch in &self.batches {
            // Machines can't start batch work before the batch exists.
            let ready: Vec<f64> = free_at.iter().map(|&f| f.max(batch.time)).collect();
            let placement = policy.reschedule(instance, &batch.tasks, &all, &ready);
            assert_eq!(placement.len(), batch.tasks.len(), "policy returned wrong arity");

            let mut completion = batch.time;
            let mut cursor = ready;
            for (&t, &m) in batch.tasks.iter().zip(&placement) {
                cursor[m] += instance.etc().etc_on(m, t);
                completion = completion.max(cursor[m]);
            }
            free_at = cursor;
            stats.push(BatchStats {
                arrival: batch.time,
                completion,
                latency: completion - batch.time,
            });
        }

        let makespan = free_at.iter().copied().fold(0.0f64, f64::max);
        BatchReport { batches: stats, makespan, machine_free_at: free_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reschedule::{MctRescheduler, PaCgaRescheduler};

    fn inst() -> EtcInstance {
        EtcInstance::toy(24, 4)
    }

    #[test]
    fn equal_batches_partition_all_tasks() {
        let inst = inst();
        let sim = BatchSimulator::equal_batches(&inst, 5, 10.0);
        let total: usize = sim.batches.iter().map(|b| b.tasks.len()).sum();
        assert_eq!(total, 24);
        assert_eq!(sim.batches[0].time, 0.0);
        assert_eq!(sim.batches[4].time, 40.0);
    }

    #[test]
    fn single_batch_equals_static_scheduling() {
        let inst = inst();
        let sim = BatchSimulator::equal_batches(&inst, 1, 0.0);
        let report = sim.run(&MctRescheduler);
        // Same placement as MCT on the whole instance.
        let mct = heuristics::mct(&inst);
        assert!((report.makespan - mct.makespan()).abs() < 1e-9);
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.mean_latency(), report.makespan);
    }

    #[test]
    fn later_batches_cannot_start_before_arrival() {
        let inst = inst();
        // Huge inter-arrival gap: every batch finds idle machines, so each
        // batch's completion is ≥ its own arrival.
        let sim = BatchSimulator::equal_batches(&inst, 3, 1_000.0);
        let report = sim.run(&MctRescheduler);
        for b in &report.batches {
            assert!(b.completion >= b.arrival);
            assert!(b.latency >= 0.0);
        }
        // With gaps longer than any batch, overall makespan is set by the
        // last batch.
        assert_eq!(report.makespan, report.batches[2].completion);
    }

    #[test]
    fn congestion_raises_latency() {
        let inst = inst();
        let sparse =
            BatchSimulator::equal_batches(&inst, 4, 10_000.0).run(&MctRescheduler).mean_latency();
        let congested =
            BatchSimulator::equal_batches(&inst, 4, 0.0).run(&MctRescheduler).mean_latency();
        assert!(
            congested >= sparse,
            "back-to-back batches ({congested}) should wait at least as long as sparse ({sparse})"
        );
    }

    #[test]
    fn pa_cga_policy_not_worse_than_mct_on_makespan() {
        let inst = inst();
        let mct = BatchSimulator::equal_batches(&inst, 2, 1.0).run(&MctRescheduler);
        let pa = BatchSimulator::equal_batches(&inst, 2, 1.0)
            .run(&PaCgaRescheduler { evaluations: 3_000, ..Default::default() });
        assert!(pa.makespan <= mct.makespan * 1.01, "pa {} vs mct {}", pa.makespan, mct.makespan);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn unsorted_arrivals_rejected() {
        let inst = inst();
        BatchSimulator::new(
            &inst,
            vec![
                BatchArrival { time: 5.0, tasks: vec![0] },
                BatchArrival { time: 1.0, tasks: vec![1] },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "two batches")]
    fn duplicate_task_rejected() {
        let inst = inst();
        BatchSimulator::new(
            &inst,
            vec![
                BatchArrival { time: 0.0, tasks: vec![0, 1] },
                BatchArrival { time: 1.0, tasks: vec![1] },
            ],
        );
    }
}
