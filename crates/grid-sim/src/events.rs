//! Dynamic-grid events and the session-level grid state they mutate.
//!
//! The paper schedules one static ETC snapshot; a real grid loses
//! machines, regains them, drifts its runtime estimates, and sees tasks
//! arrive and leave. [`DynamicGrid`] is the authoritative world state a
//! schedule-stream session holds between events: the *base* instance
//! (every machine ever known, current task set) plus a down-mask.
//! [`GridEvent`]s are validated **before** any mutation — a rejected
//! event leaves the grid byte-identical, which is what lets the service
//! answer malformed or impossible events with a typed error and keep
//! the session alive.
//!
//! Repair is the other half: after an event, assignments optimized for
//! the previous world may name dead machines or have the wrong length.
//! [`DynamicGrid::repair_assignment`] normalizes them — the task remap
//! first, then every orphan re-placed onto a live machine through a
//! [`Rescheduler`] policy — driving [`Schedule::evacuate_machine`] so
//! the canonical-CT invariant holds through the repair itself.

use crate::reschedule::Rescheduler;
use crate::NoiseModel;
use etc_model::{EtcInstance, EtcMatrix};
use scheduling::Schedule;

/// One explicit ETC perturbation: `etc[task][machine] *= factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtcDelta {
    /// Task row.
    pub task: usize,
    /// Machine column (a down machine may drift too).
    pub machine: usize,
    /// Multiplicative factor, finite and > 0.
    pub factor: f64,
}

/// An event a schedule-stream client injects into the grid.
#[derive(Debug, Clone, PartialEq)]
pub enum GridEvent {
    /// `machine` fails: its tasks become orphans, it accepts no work.
    MachineDown {
        /// Global machine id.
        machine: usize,
    },
    /// A previously-down `machine` rejoins the grid.
    MachineUp {
        /// Global machine id.
        machine: usize,
    },
    /// Noise-model drift: every ETC entry is multiplied by the
    /// deterministic log-uniform factor of a [`NoiseModel`] world.
    EtcDrift {
        /// Relative half-width ε > 0 (factors span `[1/(1+ε), 1+ε]`).
        epsilon: f64,
        /// World seed for the factor draws.
        seed: u64,
    },
    /// Explicit per-entry drift.
    EtcDeltas {
        /// The perturbations, applied in order.
        deltas: Vec<EtcDelta>,
    },
    /// A new task arrives; its ETC row (one entry per *base* machine,
    /// down machines included) is appended as the highest task index.
    TaskArrive {
        /// `etc[machine]`, finite and > 0, length = base machine count.
        etc: Vec<f64>,
    },
    /// `task` is cancelled; higher task indices shift down by one.
    TaskCancel {
        /// Global task id (current numbering).
        task: usize,
    },
}

impl GridEvent {
    /// The wire verb of this event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            GridEvent::MachineDown { .. } => "machine.down",
            GridEvent::MachineUp { .. } => "machine.up",
            GridEvent::EtcDrift { .. } | GridEvent::EtcDeltas { .. } => "etc.drift",
            GridEvent::TaskArrive { .. } => "task.arrive",
            GridEvent::TaskCancel { .. } => "task.cancel",
        }
    }
}

/// Why an event was rejected. The grid is untouched in every case.
#[derive(Debug, Clone, PartialEq)]
pub enum EventError {
    /// Machine id out of range.
    UnknownMachine {
        /// The offending id.
        machine: usize,
        /// Machines the grid knows.
        n_machines: usize,
    },
    /// `machine.down` for a machine that is already down.
    MachineAlreadyDown {
        /// The offending id.
        machine: usize,
    },
    /// `machine.up` for a machine that is not down.
    MachineNotDown {
        /// The offending id.
        machine: usize,
    },
    /// `machine.down` would leave zero live machines.
    LastMachine {
        /// The machine whose failure was rejected.
        machine: usize,
    },
    /// Task id out of range.
    UnknownTask {
        /// The offending id.
        task: usize,
        /// Tasks the grid currently holds.
        n_tasks: usize,
    },
    /// `task.cancel` would leave zero tasks.
    LastTask,
    /// A numeric field was non-finite, non-positive, or the wrong shape.
    BadValue(String),
}

impl EventError {
    /// Stable machine-readable code for the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            EventError::UnknownMachine { .. } => "unknown_machine",
            EventError::MachineAlreadyDown { .. } => "machine_already_down",
            EventError::MachineNotDown { .. } => "machine_not_down",
            EventError::LastMachine { .. } => "last_machine",
            EventError::UnknownTask { .. } => "unknown_task",
            EventError::LastTask => "last_task",
            EventError::BadValue(_) => "bad_value",
        }
    }
}

impl std::fmt::Display for EventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventError::UnknownMachine { machine, n_machines } => {
                write!(f, "machine {machine} out of range (grid has {n_machines})")
            }
            EventError::MachineAlreadyDown { machine } => {
                write!(f, "machine {machine} is already down")
            }
            EventError::MachineNotDown { machine } => {
                write!(f, "machine {machine} is not down")
            }
            EventError::LastMachine { machine } => {
                write!(f, "machine {machine} is the last live machine")
            }
            EventError::UnknownTask { task, n_tasks } => {
                write!(f, "task {task} out of range (grid has {n_tasks})")
            }
            EventError::LastTask => write!(f, "cannot cancel the last task"),
            EventError::BadValue(m) => write!(f, "bad value: {m}"),
        }
    }
}

impl std::error::Error for EventError {}

/// How task indices moved when an event was applied — what a caller
/// needs to migrate assignments recorded against the previous world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskRemap {
    /// Task set unchanged.
    Identity,
    /// The task at this (old) index was removed; later indices shift
    /// down by one.
    Removed(usize),
    /// One task was appended at the new highest index.
    Appended,
}

impl TaskRemap {
    /// Migrates an old-numbering assignment vector. An appended task
    /// gets the `u32::MAX` placeholder — not yet placed, to be repaired.
    pub fn apply(self, old: &[u32]) -> Vec<u32> {
        match self {
            TaskRemap::Identity => old.to_vec(),
            TaskRemap::Removed(t) => {
                old.iter().enumerate().filter(|&(i, _)| i != t).map(|(_, &g)| g).collect()
            }
            TaskRemap::Appended => {
                let mut v = old.to_vec();
                v.push(u32::MAX);
                v
            }
        }
    }
}

/// The grid state one schedule-stream session evolves.
#[derive(Debug, Clone)]
pub struct DynamicGrid {
    name: String,
    base: EtcInstance,
    down: Vec<bool>,
    version: u64,
}

impl DynamicGrid {
    /// Wraps a starting instance; every machine is initially up.
    pub fn new(base: EtcInstance) -> Self {
        let down = vec![false; base.n_machines()];
        let name = base.name().to_string();
        Self { name, base, down, version: 0 }
    }

    /// The full base instance: all machines (down ones included),
    /// current task set, current (possibly drifted) ETC values.
    pub fn base(&self) -> &EtcInstance {
        &self.base
    }

    /// Applied-event count; bumps on every successful [`DynamicGrid::apply`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Is `machine` currently down? Out-of-range ids read as up.
    pub fn is_down(&self, machine: usize) -> bool {
        self.down.get(machine).copied().unwrap_or(false)
    }

    /// Global ids of the machines currently down, ascending.
    pub fn down_machines(&self) -> Vec<usize> {
        (0..self.down.len()).filter(|&m| self.down[m]).collect()
    }

    /// Global ids of the live machines, ascending.
    pub fn alive(&self) -> Vec<usize> {
        (0..self.down.len()).filter(|&m| !self.down[m]).collect()
    }

    /// Number of live machines.
    pub fn n_alive(&self) -> usize {
        self.down.iter().filter(|&&d| !d).count()
    }

    /// Validates and applies one event. On `Err`, the grid is unchanged.
    /// On `Ok`, returns how task indices moved.
    pub fn apply(&mut self, event: &GridEvent) -> Result<TaskRemap, EventError> {
        let n_machines = self.base.n_machines();
        let n_tasks = self.base.n_tasks();
        let remap = match event {
            GridEvent::MachineDown { machine } => {
                let m = *machine;
                if m >= n_machines {
                    return Err(EventError::UnknownMachine { machine: m, n_machines });
                }
                if self.down[m] {
                    return Err(EventError::MachineAlreadyDown { machine: m });
                }
                if self.n_alive() == 1 {
                    return Err(EventError::LastMachine { machine: m });
                }
                self.down[m] = true;
                TaskRemap::Identity
            }
            GridEvent::MachineUp { machine } => {
                let m = *machine;
                if m >= n_machines {
                    return Err(EventError::UnknownMachine { machine: m, n_machines });
                }
                if !self.down[m] {
                    return Err(EventError::MachineNotDown { machine: m });
                }
                self.down[m] = false;
                TaskRemap::Identity
            }
            GridEvent::EtcDrift { epsilon, seed } => {
                if !epsilon.is_finite() || *epsilon <= 0.0 {
                    return Err(EventError::BadValue(format!("drift epsilon {epsilon}")));
                }
                let noise = NoiseModel::new(*epsilon, *seed);
                let etc = EtcMatrix::from_fn(n_tasks, n_machines, |t, m| {
                    self.base.etc().etc(t, m) * noise.factor(t, m)
                });
                self.rebuild(etc, self.base.ready_times().to_vec());
                TaskRemap::Identity
            }
            GridEvent::EtcDeltas { deltas } => {
                if deltas.is_empty() {
                    return Err(EventError::BadValue("empty delta list".into()));
                }
                for d in deltas {
                    if d.machine >= n_machines {
                        return Err(EventError::UnknownMachine { machine: d.machine, n_machines });
                    }
                    if d.task >= n_tasks {
                        return Err(EventError::UnknownTask { task: d.task, n_tasks });
                    }
                    if !d.factor.is_finite() || d.factor <= 0.0 {
                        return Err(EventError::BadValue(format!(
                            "delta factor {} for task {} machine {}",
                            d.factor, d.task, d.machine
                        )));
                    }
                }
                let mut data = self.base.etc().task_major_data().to_vec();
                for d in deltas {
                    let idx = d.task * n_machines + d.machine;
                    let v = data[idx] * d.factor;
                    if !v.is_finite() || v <= 0.0 {
                        return Err(EventError::BadValue(format!(
                            "drifted etc[{}][{}] = {v}",
                            d.task, d.machine
                        )));
                    }
                    data[idx] = v;
                }
                let etc = EtcMatrix::from_task_major(n_tasks, n_machines, data);
                self.rebuild(etc, self.base.ready_times().to_vec());
                TaskRemap::Identity
            }
            GridEvent::TaskArrive { etc: row } => {
                if row.len() != n_machines {
                    return Err(EventError::BadValue(format!(
                        "arrival row has {} entries, grid has {n_machines} machines",
                        row.len()
                    )));
                }
                if let Some(v) = row.iter().find(|v| !v.is_finite() || **v <= 0.0) {
                    return Err(EventError::BadValue(format!("arrival etc {v}")));
                }
                let etc = EtcMatrix::from_fn(n_tasks + 1, n_machines, |t, m| {
                    if t < n_tasks {
                        self.base.etc().etc(t, m)
                    } else {
                        row[m]
                    }
                });
                self.rebuild(etc, self.base.ready_times().to_vec());
                TaskRemap::Appended
            }
            GridEvent::TaskCancel { task } => {
                let t0 = *task;
                if t0 >= n_tasks {
                    return Err(EventError::UnknownTask { task: t0, n_tasks });
                }
                if n_tasks == 1 {
                    return Err(EventError::LastTask);
                }
                let etc = EtcMatrix::from_fn(n_tasks - 1, n_machines, |t, m| {
                    let src = if t < t0 { t } else { t + 1 };
                    self.base.etc().etc(src, m)
                });
                self.rebuild(etc, self.base.ready_times().to_vec());
                TaskRemap::Removed(t0)
            }
        };
        self.version += 1;
        Ok(remap)
    }

    fn rebuild(&mut self, etc: EtcMatrix, ready: Vec<f64>) {
        // A stable name per version; never the unbounded
        // `name+noise(..)+noise(..)` concatenation repeated drift would
        // otherwise accrete.
        let name = format!("{}@v{}", self.name, self.version + 1);
        self.base = EtcInstance::with_ready_times(name, etc, ready);
    }

    /// The *live* instance: the base restricted to live machine columns,
    /// in ascending global order — what evolution runs on. Column `j`
    /// is global machine `alive()[j]`.
    pub fn sub_instance(&self) -> EtcInstance {
        let alive = self.alive();
        let etc = EtcMatrix::from_fn(self.base.n_tasks(), alive.len(), |t, j| {
            self.base.etc().etc(t, alive[j])
        });
        let ready: Vec<f64> = alive.iter().map(|&m| self.base.ready(m)).collect();
        let name = format!("{}@v{}/alive{}", self.name, self.version, alive.len());
        EtcInstance::with_ready_times(name, etc, ready)
    }

    /// Maps a global-machine assignment to sub-instance (live-column)
    /// space. `None` if any gene names a down or unknown machine —
    /// i.e. the assignment needs [`DynamicGrid::repair_assignment`] first.
    pub fn to_local(&self, global: &[u32]) -> Option<Vec<u32>> {
        let mut local_of = vec![u32::MAX; self.base.n_machines()];
        for (j, &m) in self.alive().iter().enumerate() {
            local_of[m] = j as u32;
        }
        global
            .iter()
            .map(|&g| match local_of.get(g as usize) {
                Some(&l) if l != u32::MAX => Some(l),
                _ => None,
            })
            .collect()
    }

    /// Maps a sub-instance assignment back to global machine ids.
    /// `None` if a gene exceeds the live-machine count.
    pub fn to_global(&self, local: &[u32]) -> Option<Vec<u32>> {
        let alive = self.alive();
        local.iter().map(|&l| alive.get(l as usize).map(|&m| m as u32)).collect()
    }

    /// Repairs tasks stranded on down machines in `schedule` (a global-
    /// space schedule over [`DynamicGrid::base`]): one `rescheduler` pass
    /// decides every orphan's destination, then each down machine is
    /// drained through [`Schedule::evacuate_machine`] so completion
    /// times stay canonical move by move. Returns the number of tasks
    /// reassigned.
    pub fn repair_schedule(&self, schedule: &mut Schedule, rescheduler: &dyn Rescheduler) -> usize {
        let alive = self.alive();
        let down = self.down_machines();
        let mut orphans: Vec<usize> = Vec::new();
        for &m in &down {
            orphans.extend(schedule.tasks_on(m).iter().map(|&t| t as usize));
        }
        if orphans.is_empty() {
            return 0;
        }
        // Live machines' completion times are exactly their committed
        // load (no orphan sits on a live machine), the ready-time
        // quantity the rescheduler contract wants.
        let ready = schedule.completion_times().to_vec();
        let targets = rescheduler.reschedule(&self.base, &orphans, &alive, &ready);
        let mut target_of = vec![u32::MAX; self.base.n_tasks()];
        for (&t, &m) in orphans.iter().zip(&targets) {
            target_of[t] = m as u32;
        }
        for &m in &down {
            schedule.evacuate_machine(&self.base, m, |task, _| target_of[task] as usize);
        }
        orphans.len()
    }

    /// Normalizes an assignment recorded against the *previous* world:
    /// applies the task `remap`, then re-places every orphan (a task on
    /// a down machine, or a just-arrived task) via `rescheduler`. The
    /// result always has the current task count and only live genes.
    pub fn repair_assignment(
        &self,
        old: &[u32],
        remap: TaskRemap,
        rescheduler: &dyn Rescheduler,
    ) -> Vec<u32> {
        let mut genes = remap.apply(old);
        debug_assert_eq!(genes.len(), self.base.n_tasks(), "remap/assignment length mismatch");
        let n_machines = self.base.n_machines();
        if genes.iter().all(|&g| (g as usize) < n_machines) {
            // Structurally valid: repair through the canonical-CT path.
            let mut s = Schedule::from_assignment(&self.base, genes);
            self.repair_schedule(&mut s, rescheduler);
            return s.assignment().to_vec();
        }
        // Placeholder genes (arrivals): compute live loads by hand, then
        // one rescheduler pass over every orphan.
        let alive = self.alive();
        let mut loads: Vec<f64> = self.base.ready_times().to_vec();
        let mut orphans: Vec<usize> = Vec::new();
        for (t, &g) in genes.iter().enumerate() {
            let m = g as usize;
            if m >= n_machines || self.down[m] {
                orphans.push(t);
            } else {
                loads[m] += self.base.etc().etc(t, m);
            }
        }
        let targets = rescheduler.reschedule(&self.base, &orphans, &alive, &loads);
        for (&t, &m) in orphans.iter().zip(&targets) {
            genes[t] = m as u32;
        }
        genes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reschedule::MctRescheduler;
    use scheduling::check_schedule;

    fn grid() -> DynamicGrid {
        DynamicGrid::new(EtcInstance::toy(12, 4))
    }

    #[test]
    fn down_then_up_round_trips() {
        let mut g = grid();
        assert_eq!(g.apply(&GridEvent::MachineDown { machine: 2 }), Ok(TaskRemap::Identity));
        assert!(g.is_down(2));
        assert_eq!(g.alive(), vec![0, 1, 3]);
        assert_eq!(g.apply(&GridEvent::MachineUp { machine: 2 }), Ok(TaskRemap::Identity));
        assert_eq!(g.n_alive(), 4);
        assert_eq!(g.version(), 2);
    }

    #[test]
    fn invalid_events_leave_grid_untouched() {
        let mut g = grid();
        let before = g.base().etc().task_major_data().to_vec();
        let cases = [
            (GridEvent::MachineDown { machine: 9 }, "unknown_machine"),
            (GridEvent::MachineUp { machine: 1 }, "machine_not_down"),
            (GridEvent::EtcDrift { epsilon: -1.0, seed: 0 }, "bad_value"),
            (GridEvent::EtcDrift { epsilon: f64::NAN, seed: 0 }, "bad_value"),
            (GridEvent::TaskCancel { task: 99 }, "unknown_task"),
            (GridEvent::TaskArrive { etc: vec![1.0; 3] }, "bad_value"),
            (GridEvent::TaskArrive { etc: vec![1.0, -2.0, 1.0, 1.0] }, "bad_value"),
            (
                GridEvent::EtcDeltas {
                    deltas: vec![EtcDelta { task: 0, machine: 0, factor: 0.0 }],
                },
                "bad_value",
            ),
        ];
        for (event, code) in cases {
            let err = g.apply(&event).unwrap_err();
            assert_eq!(err.code(), code, "{event:?}");
        }
        assert_eq!(g.version(), 0);
        assert_eq!(g.base().etc().task_major_data(), before.as_slice());
    }

    #[test]
    fn double_down_and_last_machine_rejected() {
        let mut g = DynamicGrid::new(EtcInstance::toy(6, 2));
        g.apply(&GridEvent::MachineDown { machine: 0 }).unwrap();
        assert_eq!(
            g.apply(&GridEvent::MachineDown { machine: 0 }).unwrap_err().code(),
            "machine_already_down"
        );
        assert_eq!(
            g.apply(&GridEvent::MachineDown { machine: 1 }).unwrap_err().code(),
            "last_machine"
        );
    }

    #[test]
    fn drift_composes_deterministically() {
        let mut a = grid();
        let mut b = grid();
        for g in [&mut a, &mut b] {
            g.apply(&GridEvent::EtcDrift { epsilon: 0.2, seed: 5 }).unwrap();
            g.apply(&GridEvent::EtcDrift { epsilon: 0.1, seed: 9 }).unwrap();
        }
        assert_eq!(a.base().etc().task_major_data(), b.base().etc().task_major_data());
        // And matches the hand-composed factors bitwise.
        let n0 = NoiseModel::new(0.2, 5);
        let n1 = NoiseModel::new(0.1, 9);
        let toy = EtcInstance::toy(12, 4);
        for t in 0..12 {
            for m in 0..4 {
                let expect = toy.etc().etc(t, m) * n0.factor(t, m) * n1.factor(t, m);
                assert_eq!(a.base().etc().etc(t, m).to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn arrive_and_cancel_reshape_tasks() {
        let mut g = grid();
        assert_eq!(
            g.apply(&GridEvent::TaskArrive { etc: vec![2.0, 3.0, 4.0, 5.0] }),
            Ok(TaskRemap::Appended)
        );
        assert_eq!(g.base().n_tasks(), 13);
        assert_eq!(g.base().etc().etc(12, 1), 3.0);
        assert_eq!(g.apply(&GridEvent::TaskCancel { task: 0 }), Ok(TaskRemap::Removed(0)));
        assert_eq!(g.base().n_tasks(), 12);
        // Old task 1 is the new task 0.
        let toy = EtcInstance::toy(12, 4);
        assert_eq!(g.base().etc().etc(0, 2), toy.etc().etc(1, 2));
    }

    #[test]
    fn remap_apply_shapes() {
        assert_eq!(TaskRemap::Identity.apply(&[1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(TaskRemap::Removed(1).apply(&[1, 2, 3]), vec![1, 3]);
        assert_eq!(TaskRemap::Appended.apply(&[1, 2]), vec![1, 2, u32::MAX]);
    }

    #[test]
    fn repair_schedule_moves_every_orphan_to_live_machines() {
        let mut g = grid();
        g.apply(&GridEvent::MachineDown { machine: 1 }).unwrap();
        g.apply(&GridEvent::MachineDown { machine: 3 }).unwrap();
        let mut s = Schedule::round_robin(g.base());
        let orphans = s.count_on(1) + s.count_on(3);
        let moved = g.repair_schedule(&mut s, &MctRescheduler);
        assert_eq!(moved, orphans);
        assert_eq!(s.count_on(1), 0);
        assert_eq!(s.count_on(3), 0);
        check_schedule(g.base(), &s).unwrap();
        assert_eq!(s.makespan().to_bits(), s.makespan_full().to_bits());
    }

    #[test]
    fn repair_assignment_handles_arrival_placeholder() {
        let mut g = grid();
        let old: Vec<u32> = (0..12).map(|t| (t % 4) as u32).collect();
        g.apply(&GridEvent::MachineDown { machine: 0 }).unwrap();
        let remap = g.apply(&GridEvent::TaskArrive { etc: vec![1.0; 4] }).unwrap();
        let repaired = g.repair_assignment(&old, remap, &MctRescheduler);
        assert_eq!(repaired.len(), 13);
        assert!(repaired.iter().all(|&m| !g.is_down(m as usize) && (m as usize) < 4));
    }

    #[test]
    fn local_global_round_trip() {
        let mut g = grid();
        g.apply(&GridEvent::MachineDown { machine: 1 }).unwrap();
        let global = vec![0u32, 2, 3, 0, 2, 3, 0, 2, 3, 0, 2, 3];
        let local = g.to_local(&global).unwrap();
        assert_eq!(local, vec![0u32, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(g.to_global(&local).unwrap(), global);
        // A gene on the down machine cannot be localized.
        assert!(g.to_local(&[1u32; 12]).is_none());
    }

    #[test]
    fn sub_instance_restricts_columns_and_ready() {
        let mut g = grid();
        g.apply(&GridEvent::MachineDown { machine: 0 }).unwrap();
        let sub = g.sub_instance();
        assert_eq!(sub.n_machines(), 3);
        assert_eq!(sub.n_tasks(), 12);
        for t in 0..12 {
            for (j, &m) in g.alive().iter().enumerate() {
                assert_eq!(sub.etc().etc(t, j), g.base().etc().etc(t, m));
            }
        }
    }
}
