//! Simulation outputs: per-task execution records and run-level summary.

use serde::{Deserialize, Serialize};

/// What happened to one task during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The machine that finally completed the task.
    pub machine: usize,
    /// When execution (the successful attempt) started.
    pub start: f64,
    /// When the task finished.
    pub finish: f64,
    /// How many aborted attempts preceded the successful one (machine
    /// drops mid-execution).
    pub aborted_attempts: u32,
}

/// Summary of a simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-task records, indexed by task id.
    pub tasks: Vec<TaskRecord>,
    /// Time the last task finished.
    pub makespan: f64,
    /// Sum of task finishing times (flowtime under the executed order).
    pub flowtime: f64,
    /// Machines that dropped during the run.
    pub failed_machines: Vec<usize>,
    /// Total execution time wasted in aborted attempts.
    pub lost_work: f64,
    /// How many rescheduling rounds the run needed.
    pub reschedules: u32,
}

impl SimReport {
    /// Mean task turnaround (finish time) — flowtime / #tasks.
    pub fn mean_finish(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.flowtime / self.tasks.len() as f64
    }

    /// Tasks that needed more than one attempt.
    pub fn retried_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| t.aborted_attempts > 0).count()
    }

    /// Validates internal consistency: every record finishes by the
    /// makespan, starts before it finishes, and flowtime is the sum of
    /// finishes.
    pub fn validate(&self) -> Result<(), String> {
        let mut flow = 0.0;
        for (t, r) in self.tasks.iter().enumerate() {
            if r.start > r.finish {
                return Err(format!("task {t} starts after it finishes"));
            }
            if r.finish > self.makespan + 1e-9 {
                return Err(format!("task {t} finishes after makespan"));
            }
            flow += r.finish;
        }
        if (flow - self.flowtime).abs() > 1e-6 * flow.abs().max(1.0) {
            return Err(format!("flowtime {} != sum of finishes {flow}", self.flowtime));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(machine: usize, start: f64, finish: f64) -> TaskRecord {
        TaskRecord { machine, start, finish, aborted_attempts: 0 }
    }

    #[test]
    fn mean_finish_and_retries() {
        let r = SimReport {
            tasks: vec![record(0, 0.0, 2.0), record(1, 0.0, 4.0)],
            makespan: 4.0,
            flowtime: 6.0,
            failed_machines: vec![],
            lost_work: 0.0,
            reschedules: 0,
        };
        assert_eq!(r.mean_finish(), 3.0);
        assert_eq!(r.retried_tasks(), 0);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn validate_catches_inverted_times() {
        let r = SimReport {
            tasks: vec![record(0, 5.0, 2.0)],
            makespan: 5.0,
            flowtime: 2.0,
            failed_machines: vec![],
            lost_work: 0.0,
            reschedules: 0,
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn validate_catches_finish_after_makespan() {
        let r = SimReport {
            tasks: vec![record(0, 0.0, 9.0)],
            makespan: 5.0,
            flowtime: 9.0,
            failed_machines: vec![],
            lost_work: 0.0,
            reschedules: 0,
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn validate_catches_flowtime_mismatch() {
        let r = SimReport {
            tasks: vec![record(0, 0.0, 2.0)],
            makespan: 2.0,
            flowtime: 99.0,
            failed_machines: vec![],
            lost_work: 0.0,
            reschedules: 0,
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn empty_report() {
        let r = SimReport {
            tasks: vec![],
            makespan: 0.0,
            flowtime: 0.0,
            failed_machines: vec![],
            lost_work: 0.0,
            reschedules: 0,
        };
        assert_eq!(r.mean_finish(), 0.0);
        assert!(r.validate().is_ok());
    }
}
