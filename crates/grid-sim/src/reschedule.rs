//! Rescheduling policies invoked when a machine drops.
//!
//! A policy sees the orphaned tasks, the surviving machines, and each
//! survivor's **ready time** (when it will have finished its committed
//! work — the exact quantity the ETC model's `ready` field describes) and
//! produces a new assignment for the orphans.

use etc_model::{EtcInstance, EtcMatrix};
use pa_cga_core::config::{PaCgaConfig, Termination};
use pa_cga_core::engine::PaCga;
use scheduling::Schedule;

/// A rescheduling policy.
pub trait Rescheduler {
    /// Maps each task of `orphans` to one of the `alive` machines.
    /// `ready[m]` (indexed by *global* machine id) is when machine `m`
    /// can start new work. Returns one global machine id per orphan.
    fn reschedule(
        &self,
        instance: &EtcInstance,
        orphans: &[usize],
        alive: &[usize],
        ready: &[f64],
    ) -> Vec<usize>;

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// Greedy Minimum-Completion-Time rescheduling: each orphan (in index
/// order) goes where it finishes soonest. Cheap, always available.
#[derive(Debug, Clone, Copy, Default)]
pub struct MctRescheduler;

impl Rescheduler for MctRescheduler {
    fn reschedule(
        &self,
        instance: &EtcInstance,
        orphans: &[usize],
        alive: &[usize],
        ready: &[f64],
    ) -> Vec<usize> {
        assert!(!alive.is_empty(), "no machines left to reschedule onto");
        let mut avail: Vec<f64> = alive.iter().map(|&m| ready[m]).collect();
        let mut out = Vec::with_capacity(orphans.len());
        for &task in orphans {
            let mut best = 0;
            let mut best_ct = f64::INFINITY;
            for (i, &m) in alive.iter().enumerate() {
                let ct = avail[i] + instance.etc().etc_on(m, task);
                if ct < best_ct {
                    best_ct = ct;
                    best = i;
                }
            }
            avail[best] = best_ct;
            out.push(alive[best]);
        }
        out
    }

    fn name(&self) -> &'static str {
        "mct"
    }
}

/// Re-optimizes the orphans with PA-CGA itself on the *residual* problem:
/// a sub-instance whose tasks are the orphans, whose machines are the
/// survivors, and whose ready times carry the survivors' committed load.
#[derive(Debug, Clone, Copy)]
pub struct PaCgaRescheduler {
    /// Evaluation budget for the re-optimization (deterministic).
    pub evaluations: u64,
    /// Grid side of the (square) re-optimization population.
    pub grid_side: usize,
    /// H2LL iterations during re-optimization.
    pub ls_iterations: usize,
    /// Seed for the re-optimization run.
    pub seed: u64,
}

impl Default for PaCgaRescheduler {
    fn default() -> Self {
        Self { evaluations: 5_000, grid_side: 8, ls_iterations: 5, seed: 0 }
    }
}

impl Rescheduler for PaCgaRescheduler {
    fn reschedule(
        &self,
        instance: &EtcInstance,
        orphans: &[usize],
        alive: &[usize],
        ready: &[f64],
    ) -> Vec<usize> {
        assert!(!alive.is_empty(), "no machines left to reschedule onto");
        if orphans.is_empty() {
            return Vec::new();
        }
        // Residual sub-instance: rows = orphans, columns = alive machines.
        let etc = EtcMatrix::from_fn(orphans.len(), alive.len(), |i, j| {
            instance.etc().etc_on(alive[j], orphans[i])
        });
        // Normalize ready times so the smallest is 0 — the offset is
        // common to every machine and does not change the argmin, but
        // keeps residual makespans comparable across failure times.
        let min_ready = alive.iter().map(|&m| ready[m]).fold(f64::INFINITY, f64::min);
        let sub_ready: Vec<f64> = alive.iter().map(|&m| ready[m] - min_ready).collect();
        let sub = EtcInstance::with_ready_times("residual", etc, sub_ready);

        let config = PaCgaConfig::builder()
            .grid(self.grid_side, self.grid_side)
            .threads(1) // deterministic re-optimization
            .local_search_iterations(self.ls_iterations)
            .termination(Termination::Evaluations(self.evaluations))
            .seed(self.seed)
            .build();
        let outcome = PaCga::new(&sub, config).run();
        outcome.best.schedule.assignment().iter().map(|&j| alive[j as usize]).collect()
    }

    fn name(&self) -> &'static str {
        "pa-cga"
    }
}

/// Helper shared by tests and the batch driver: applies a rescheduler and
/// folds the result into a full `Schedule` for the surviving machines.
pub fn apply_reschedule(
    instance: &EtcInstance,
    base: &Schedule,
    orphans: &[usize],
    new_machines: &[usize],
) -> Schedule {
    assert_eq!(orphans.len(), new_machines.len());
    let mut s = base.clone();
    for (&t, &m) in orphans.iter().zip(new_machines) {
        s.move_task(instance, t, m);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> EtcInstance {
        EtcInstance::toy(12, 4) // ETC[t][m] = (t+1)(m+1)
    }

    #[test]
    fn mct_places_on_soonest_finisher() {
        let inst = inst();
        let ready = vec![100.0, 0.0, 50.0, 0.0];
        let alive = vec![1, 2, 3];
        let out = MctRescheduler.reschedule(&inst, &[0], &alive, &ready);
        // Task 0: m1 -> 0+2, m2 -> 50+3, m3 -> 0+4. Best m1.
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn mct_accumulates_load_across_orphans() {
        let inst = inst();
        let ready = vec![0.0; 4];
        let alive = vec![0, 1];
        let out = MctRescheduler.reschedule(&inst, &[0, 1, 2], &alive, &ready);
        assert_eq!(out.len(), 3);
        // Orphans can't all pile on machine 0: after t0 (cost 1) and
        // t1 (cost 2) land there, t2 is cheaper on m1 (6 vs 3+3... both 6,
        // tie to first) — at minimum the loads stay balanced within reason.
        for &m in &out {
            assert!(alive.contains(&m));
        }
    }

    #[test]
    fn pa_cga_rescheduler_uses_alive_machines_only() {
        let inst = inst();
        let ready = vec![5.0, 3.0, 0.0, 100.0];
        let alive = vec![0, 2];
        let orphans = vec![1, 4, 7, 9];
        let out = PaCgaRescheduler { evaluations: 500, ..Default::default() }
            .reschedule(&inst, &orphans, &alive, &ready);
        assert_eq!(out.len(), orphans.len());
        for &m in &out {
            assert!(alive.contains(&m), "assigned to dead machine {m}");
        }
    }

    #[test]
    fn pa_cga_rescheduler_deterministic() {
        let inst = inst();
        let ready = vec![1.0, 2.0, 3.0, 4.0];
        let alive = vec![0, 1, 3];
        let r = PaCgaRescheduler { evaluations: 400, seed: 5, ..Default::default() };
        let a = r.reschedule(&inst, &[2, 5, 8], &alive, &ready);
        let b = r.reschedule(&inst, &[2, 5, 8], &alive, &ready);
        assert_eq!(a, b);
    }

    #[test]
    fn pa_cga_beats_or_matches_mct_on_residual_makespan() {
        let inst = EtcInstance::toy(20, 4);
        let ready = vec![0.0; 4];
        let alive = vec![0, 1, 2, 3];
        let orphans: Vec<usize> = (0..20).collect();
        let residual_makespan = |assign: &[usize]| -> f64 {
            let mut loads = ready.clone();
            for (&t, &m) in orphans.iter().zip(assign) {
                loads[m] += inst.etc().etc_on(m, t);
            }
            loads.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        };
        let mct = residual_makespan(&MctRescheduler.reschedule(&inst, &orphans, &alive, &ready));
        let pa = residual_makespan(
            &PaCgaRescheduler { evaluations: 4_000, ..Default::default() }
                .reschedule(&inst, &orphans, &alive, &ready),
        );
        assert!(pa <= mct * 1.001, "PA-CGA residual {pa} worse than MCT {mct}");
    }

    #[test]
    fn apply_reschedule_moves_only_orphans() {
        let inst = inst();
        let base = Schedule::round_robin(&inst);
        let moved = apply_reschedule(&inst, &base, &[0, 5], &[3, 3]);
        assert_eq!(moved.machine_of(0), 3);
        assert_eq!(moved.machine_of(5), 3);
        for t in [1, 2, 3, 4, 6, 7] {
            assert_eq!(moved.machine_of(t), base.machine_of(t));
        }
    }

    #[test]
    fn empty_orphans_yield_empty_assignment() {
        let inst = inst();
        let out = PaCgaRescheduler::default().reschedule(&inst, &[], &[0], &[0.0; 4]);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "no machines left")]
    fn no_alive_machines_panics() {
        let inst = inst();
        MctRescheduler.reschedule(&inst, &[0], &[], &[0.0; 4]);
    }
}
