//! Machine failure (drop) traces.
//!
//! The ETC model's dynamic side: a machine drops at a given time and never
//! returns within the run (the paper's non-preemptive "unless it drops
//! from the grid" clause). Traces are either explicit or sampled.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A set of machine-drop events (at most one per machine).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureTrace {
    /// `(machine, time)` drop events, sorted by time.
    events: Vec<(usize, f64)>,
}

impl FailureTrace {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Explicit events. Later duplicates for the same machine are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics on duplicate machines, negative or non-finite times.
    pub fn new(mut events: Vec<(usize, f64)>) -> Self {
        for &(m, t) in &events {
            assert!(t.is_finite() && t >= 0.0, "bad failure time {t} for machine {m}");
        }
        events.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
        let mut seen = std::collections::HashSet::new();
        for &(m, _) in &events {
            assert!(seen.insert(m), "machine {m} fails twice");
        }
        Self { events }
    }

    /// Samples failures: each machine independently drops with probability
    /// `p_fail`, at a uniform time in `[0, horizon)`.
    pub fn sample(n_machines: usize, p_fail: f64, horizon: f64, rng: &mut impl Rng) -> Self {
        assert!((0.0..=1.0).contains(&p_fail), "p_fail out of range");
        assert!(horizon > 0.0, "horizon must be positive");
        let mut events = Vec::new();
        for m in 0..n_machines {
            if rng.gen_bool(p_fail) {
                events.push((m, rng.gen_range(0.0..horizon)));
            }
        }
        Self::new(events)
    }

    /// Drop events in time order.
    pub fn events(&self) -> &[(usize, f64)] {
        &self.events
    }

    /// Drop time of `machine`, if it fails.
    pub fn drop_time(&self, machine: usize) -> Option<f64> {
        self.events.iter().find(|&&(m, _)| m == machine).map(|&(_, t)| t)
    }

    /// Number of failing machines.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no machine fails.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn events_sorted_by_time() {
        let t = FailureTrace::new(vec![(2, 9.0), (0, 1.0), (1, 4.0)]);
        let times: Vec<f64> = t.events().iter().map(|&(_, t)| t).collect();
        assert_eq!(times, vec![1.0, 4.0, 9.0]);
    }

    #[test]
    fn drop_time_lookup() {
        let t = FailureTrace::new(vec![(3, 5.0)]);
        assert_eq!(t.drop_time(3), Some(5.0));
        assert_eq!(t.drop_time(0), None);
    }

    #[test]
    fn sampling_respects_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(FailureTrace::sample(16, 0.0, 100.0, &mut rng).is_empty());
        let all = FailureTrace::sample(16, 1.0, 100.0, &mut rng);
        assert_eq!(all.len(), 16);
        for &(_, t) in all.events() {
            assert!((0.0..100.0).contains(&t));
        }
    }

    #[test]
    fn sampling_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        assert_eq!(
            FailureTrace::sample(8, 0.5, 10.0, &mut a),
            FailureTrace::sample(8, 0.5, 10.0, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "fails twice")]
    fn duplicate_machine_rejected() {
        FailureTrace::new(vec![(1, 2.0), (1, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "bad failure time")]
    fn negative_time_rejected() {
        FailureTrace::new(vec![(1, -2.0)]);
    }
}
