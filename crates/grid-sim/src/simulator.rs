//! The discrete-event executor.
//!
//! Each machine runs its assigned tasks non-preemptively in ascending task
//! order, starting at its ready time. Failure events interrupt a machine:
//! its running task is aborted (the work is lost), its pending tasks are
//! orphaned, and the configured [`Rescheduler`] places the orphans on the
//! survivors — whose availability ("ready time" in ETC terms) accounts for
//! all committed work.
//!
//! **Fidelity invariant** (tested): with no failures, the simulated
//! makespan equals `Schedule::makespan()` *exactly* — the simulator drains
//! queues in the same order the cached completion times were summed.

use crate::failures::FailureTrace;
use crate::report::{SimReport, TaskRecord};
use crate::reschedule::Rescheduler;
use etc_model::EtcInstance;
use scheduling::Schedule;
use std::collections::VecDeque;

/// Per-machine execution state.
#[derive(Debug, Clone)]
struct MachineState {
    alive: bool,
    /// When the machine becomes free of everything currently recorded.
    cursor: f64,
    /// Pending tasks in execution order.
    queue: VecDeque<usize>,
}

/// The simulator: an instance plus an optional failure trace.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    instance: &'a EtcInstance,
    failures: FailureTrace,
}

impl<'a> Simulator<'a> {
    /// Failure-free simulator.
    pub fn new(instance: &'a EtcInstance) -> Self {
        Self { instance, failures: FailureTrace::none() }
    }

    /// Simulator with a failure trace.
    pub fn with_failures(instance: &'a EtcInstance, failures: FailureTrace) -> Self {
        for &(m, _) in failures.events() {
            assert!(m < instance.n_machines(), "failure on unknown machine {m}");
        }
        Self { instance, failures }
    }

    /// Executes `schedule`, rescheduling around failures with `policy`.
    ///
    /// # Panics
    ///
    /// Panics if every machine fails while tasks remain (nothing left to
    /// run the workload on).
    pub fn run(&self, schedule: &Schedule, policy: &dyn Rescheduler) -> SimReport {
        let instance = self.instance;
        let n_tasks = instance.n_tasks();
        let n_machines = instance.n_machines();
        assert_eq!(schedule.n_tasks(), n_tasks, "schedule/instance mismatch");

        let mut machines: Vec<MachineState> = (0..n_machines)
            .map(|m| MachineState {
                alive: true,
                cursor: instance.ready(m),
                queue: VecDeque::new(),
            })
            .collect();
        for t in 0..n_tasks {
            machines[schedule.machine_of(t)].queue.push_back(t);
        }
        // Release time: rescheduled tasks only exist after the failure.
        let mut release = vec![0.0f64; n_tasks];
        let mut records: Vec<Option<TaskRecord>> = vec![None; n_tasks];
        let mut attempts = vec![0u32; n_tasks];
        let mut lost_work = 0.0;
        let mut reschedules = 0u32;
        let mut failed_machines = Vec::new();

        // Drains a machine's queue up to `until`, recording completions.
        // Returns the aborted running task, if any.
        #[allow(clippy::too_many_arguments)]
        fn drain(
            instance: &EtcInstance,
            m: usize,
            st: &mut MachineState,
            until: f64,
            release: &[f64],
            attempts: &[u32],
            records: &mut [Option<TaskRecord>],
            lost: &mut f64,
        ) -> Option<usize> {
            while let Some(&t) = st.queue.front() {
                let start = st.cursor.max(release[t]);
                let finish = start + instance.etc().etc_on(m, t);
                if finish <= until {
                    records[t] = Some(TaskRecord {
                        machine: m,
                        start,
                        finish,
                        aborted_attempts: attempts[t],
                    });
                    st.cursor = finish;
                    st.queue.pop_front();
                } else if start < until {
                    // Running when the machine drops: abort.
                    *lost += until - start;
                    st.queue.pop_front();
                    return Some(t);
                } else {
                    // Not started yet.
                    return None;
                }
            }
            None
        }

        for &(failed, when) in self.failures.events() {
            let mut orphans: Vec<usize> = Vec::new();
            {
                let st = &mut machines[failed];
                if !st.alive {
                    continue;
                }
                if let Some(aborted) = drain(
                    instance,
                    failed,
                    st,
                    when,
                    &release,
                    &attempts,
                    &mut records,
                    &mut lost_work,
                ) {
                    attempts[aborted] += 1;
                    release[aborted] = when;
                    orphans.push(aborted);
                }
                while let Some(t) = st.queue.pop_front() {
                    release[t] = release[t].max(when);
                    orphans.push(t);
                }
                st.alive = false;
            }
            failed_machines.push(failed);

            if orphans.is_empty() {
                continue;
            }
            let alive: Vec<usize> = (0..n_machines).filter(|&m| machines[m].alive).collect();
            assert!(
                !alive.is_empty(),
                "all machines failed with {} tasks outstanding",
                orphans.len()
            );
            // Ready time of a survivor = when its committed queue drains,
            // never earlier than the failure instant.
            let ready: Vec<f64> = (0..n_machines)
                .map(|m| {
                    let st = &machines[m];
                    let mut cursor = st.cursor;
                    for &t in &st.queue {
                        let start = cursor.max(release[t]);
                        cursor = start + instance.etc().etc_on(m, t);
                    }
                    cursor.max(when)
                })
                .collect();
            orphans.sort_unstable();
            let placement = policy.reschedule(instance, &orphans, &alive, &ready);
            assert_eq!(placement.len(), orphans.len(), "policy returned wrong arity");
            for (&t, &m) in orphans.iter().zip(&placement) {
                assert!(machines[m].alive, "policy used dead machine {m}");
                machines[m].queue.push_back(t);
            }
            reschedules += 1;
        }

        // Final drain of every surviving machine.
        for (m, st) in machines.iter_mut().enumerate() {
            if !st.alive {
                debug_assert!(st.queue.is_empty(), "dead machine kept tasks");
                continue;
            }
            let aborted = drain(
                instance,
                m,
                st,
                f64::INFINITY,
                &release,
                &attempts,
                &mut records,
                &mut lost_work,
            );
            debug_assert!(aborted.is_none(), "abort without a failure");
        }

        let tasks: Vec<TaskRecord> = records
            .into_iter()
            .enumerate()
            .map(|(t, r)| r.unwrap_or_else(|| panic!("task {t} never completed")))
            .collect();
        let makespan = tasks.iter().map(|r| r.finish).fold(0.0f64, f64::max);
        let flowtime = tasks.iter().map(|r| r.finish).sum();
        SimReport { tasks, makespan, flowtime, failed_machines, lost_work, reschedules }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reschedule::MctRescheduler;
    use etc_model::EtcMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> EtcInstance {
        EtcInstance::toy(12, 3)
    }

    #[test]
    fn failure_free_makespan_matches_schedule_exactly() {
        let inst = toy();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10 {
            let s = Schedule::random(&inst, &mut rng);
            let report = Simulator::new(&inst).run(&s, &MctRescheduler);
            assert_eq!(report.makespan, s.makespan(), "simulation diverged");
            assert!(report.validate().is_ok());
            assert_eq!(report.reschedules, 0);
            assert_eq!(report.lost_work, 0.0);
        }
    }

    #[test]
    fn records_sequential_execution_per_machine() {
        let inst = toy();
        // Tasks 0 and 3 on machine 0: ETC 1 and 4.
        let s = Schedule::from_assignment(&inst, vec![0, 1, 1, 0, 1, 2, 2, 2, 1, 2, 1, 2]);
        let report = Simulator::new(&inst).run(&s, &MctRescheduler);
        let r0 = report.tasks[0];
        let r3 = report.tasks[3];
        assert_eq!(r0.start, 0.0);
        assert_eq!(r0.finish, 1.0);
        assert_eq!(r3.start, 1.0);
        assert_eq!(r3.finish, 5.0);
    }

    #[test]
    fn ready_times_delay_start() {
        let etc = EtcMatrix::from_task_major(1, 2, vec![2.0, 2.0]);
        let inst = EtcInstance::with_ready_times("rt", etc, vec![10.0, 0.0]);
        let s = Schedule::from_assignment(&inst, vec![0]);
        let report = Simulator::new(&inst).run(&s, &MctRescheduler);
        assert_eq!(report.tasks[0].start, 10.0);
        assert_eq!(report.makespan, 12.0);
    }

    #[test]
    fn failure_orphans_pending_tasks() {
        // Machine 0 gets tasks 0 (ETC 1) and 3 (ETC 4); it fails at t=2,
        // while task 3 is running (started at 1). Task 0 survives; task 3
        // restarts elsewhere.
        let inst = toy();
        let s = Schedule::from_assignment(&inst, vec![0, 1, 1, 0, 1, 2, 2, 2, 1, 2, 1, 2]);
        let failures = FailureTrace::new(vec![(0, 2.0)]);
        let report = Simulator::with_failures(&inst, failures).run(&s, &MctRescheduler);

        assert!(report.validate().is_ok());
        assert_eq!(report.failed_machines, vec![0]);
        assert_eq!(report.reschedules, 1);
        assert_eq!(report.tasks[0].machine, 0, "completed before failure");
        assert_ne!(report.tasks[3].machine, 0, "aborted task moved");
        assert_eq!(report.tasks[3].aborted_attempts, 1);
        assert!(report.tasks[3].start >= 2.0, "restart precedes failure");
        assert!((report.lost_work - 1.0).abs() < 1e-12, "ran 1..2 before abort");
    }

    #[test]
    fn failure_before_ready_time_loses_nothing() {
        let etc = EtcMatrix::from_task_major(1, 2, vec![2.0, 3.0]);
        let inst = EtcInstance::with_ready_times("rt", etc, vec![10.0, 0.0]);
        let s = Schedule::from_assignment(&inst, vec![0]);
        let failures = FailureTrace::new(vec![(0, 5.0)]);
        let report = Simulator::with_failures(&inst, failures).run(&s, &MctRescheduler);
        assert_eq!(report.lost_work, 0.0);
        assert_eq!(report.tasks[0].machine, 1);
        assert_eq!(report.tasks[0].aborted_attempts, 0, "never started on m0");
        // Restarts at the failure time at the earliest.
        assert!(report.tasks[0].start >= 5.0);
    }

    #[test]
    fn cascading_failures_retry_counts_accumulate() {
        // Task bounces: m0 fails at 0.5 (task running), rescheduled,
        // then m1 fails at 1.0.
        let etc = EtcMatrix::from_fn(2, 3, |_, _| 10.0);
        let inst = EtcInstance::new("c", etc);
        let s = Schedule::from_assignment(&inst, vec![0, 0]);
        let failures = FailureTrace::new(vec![(0, 0.5), (1, 1.0)]);
        let report = Simulator::with_failures(&inst, failures).run(&s, &MctRescheduler);
        assert!(report.validate().is_ok());
        assert_eq!(report.reschedules, 2);
        for r in &report.tasks {
            assert_eq!(r.machine, 2, "only survivor");
        }
        assert!(report.retried_tasks() >= 1);
    }

    #[test]
    fn failure_of_idle_machine_is_harmless() {
        let inst = toy();
        let s = Schedule::from_assignment(&inst, vec![1; 12]);
        let failures = FailureTrace::new(vec![(0, 1.0)]);
        let report = Simulator::with_failures(&inst, failures).run(&s, &MctRescheduler);
        assert_eq!(report.reschedules, 0);
        assert_eq!(report.makespan, s.makespan());
    }

    #[test]
    fn makespan_degrades_but_stays_finite_under_failures() {
        let inst = toy();
        let mut rng = SmallRng::seed_from_u64(8);
        let s = Schedule::random(&inst, &mut rng);
        let clean = Simulator::new(&inst).run(&s, &MctRescheduler).makespan;
        let failures = FailureTrace::new(vec![(0, clean * 0.25), (1, clean * 0.5)]);
        let degraded = Simulator::with_failures(&inst, failures).run(&s, &MctRescheduler);
        assert!(degraded.validate().is_ok());
        assert!(degraded.makespan >= clean * 0.999);
        assert!(degraded.makespan.is_finite());
    }

    #[test]
    #[should_panic(expected = "all machines failed")]
    fn total_failure_panics() {
        let etc = EtcMatrix::from_fn(2, 2, |_, _| 100.0);
        let inst = EtcInstance::new("t", etc);
        let s = Schedule::from_assignment(&inst, vec![0, 1]);
        let failures = FailureTrace::new(vec![(0, 1.0), (1, 2.0)]);
        Simulator::with_failures(&inst, failures).run(&s, &MctRescheduler);
    }

    #[test]
    #[should_panic(expected = "failure on unknown machine")]
    fn failure_on_missing_machine_rejected() {
        let inst = toy();
        Simulator::with_failures(&inst, FailureTrace::new(vec![(99, 1.0)]));
    }
}
