//! Estimation-error (noise) models.
//!
//! The ETC model assumes "the computing time needed to perform a task is
//! known" (paper §2.1, the standard literature assumption). Real grids
//! deliver *estimates*; this module perturbs actual runtimes around the
//! ETC values so the robustness of an optimized schedule can be measured:
//! the realized makespan of a schedule under noise, versus the makespan it
//! promised.
//!
//! The multiplicative noise factor is drawn per `(task, machine)` pair
//! from a log-uniform distribution over `[1/(1+ε), 1+ε]` — symmetric in
//! log space, mean-preserving in order of magnitude, bounded (no negative
//! or absurd runtimes). Draws are deterministic per seed *and* per pair,
//! so a given world re-runs identically regardless of visit order.

use crate::report::SimReport;
use crate::reschedule::Rescheduler;
use crate::simulator::Simulator;
use etc_model::{EtcInstance, EtcMatrix};
use pa_cga_core::rng::{derive_seed, splitmix64};
use scheduling::Schedule;
use serde::{Deserialize, Serialize};

/// Bounded multiplicative runtime noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Relative half-width ε ≥ 0: factors span `[1/(1+ε), 1+ε]`.
    pub epsilon: f64,
    /// World seed: one seed = one fixed "reality".
    pub seed: u64,
}

impl NoiseModel {
    /// A noise model with the given half-width and seed.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "epsilon must be non-negative");
        Self { epsilon, seed }
    }

    /// The deterministic noise factor for a `(task, machine)` pair.
    pub fn factor(&self, task: usize, machine: usize) -> f64 {
        if self.epsilon == 0.0 {
            return 1.0;
        }
        // Hash (seed, task, machine) into a uniform in [0, 1).
        let h = splitmix64(derive_seed(self.seed, ((task as u64) << 32) | machine as u64));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        // Log-uniform over [1/(1+eps), 1+eps].
        let span = (1.0 + self.epsilon).ln();
        ((2.0 * u - 1.0) * span).exp()
    }

    /// Materializes the *actual* instance of this noisy world: same
    /// dimensions and ready times, each ETC entry multiplied by its
    /// factor.
    pub fn realize(&self, instance: &EtcInstance) -> EtcInstance {
        let etc = EtcMatrix::from_fn(instance.n_tasks(), instance.n_machines(), |t, m| {
            instance.etc().etc(t, m) * self.factor(t, m)
        });
        EtcInstance::with_ready_times(
            format!("{}+noise(eps={},seed={})", instance.name(), self.epsilon, self.seed),
            etc,
            instance.ready_times().to_vec(),
        )
    }
}

/// Executes a schedule (optimized against the *estimated* instance) in the
/// noisy world and reports what actually happened, plus the promise gap.
pub fn run_under_noise(
    estimated: &EtcInstance,
    schedule: &Schedule,
    noise: &NoiseModel,
    policy: &dyn Rescheduler,
) -> (SimReport, f64) {
    let actual = noise.realize(estimated);
    // Rebuild the schedule against actual runtimes: same assignment, real
    // completion times.
    let realized = Schedule::from_assignment(&actual, schedule.assignment().to_vec());
    let report = Simulator::new(&actual).run(&realized, policy);
    let promised = schedule.makespan();
    let gap = report.makespan / promised - 1.0;
    (report, gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reschedule::MctRescheduler;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_is_identity() {
        let inst = EtcInstance::toy(12, 3);
        let noise = NoiseModel::new(0.0, 7);
        assert_eq!(noise.factor(3, 1), 1.0);
        let actual = noise.realize(&inst);
        assert_eq!(actual.etc(), inst.etc());
    }

    #[test]
    fn factors_bounded_and_deterministic() {
        let noise = NoiseModel::new(0.5, 3);
        for t in 0..50 {
            for m in 0..8 {
                let f = noise.factor(t, m);
                assert!((1.0 / 1.5 - 1e-12..=1.5 + 1e-12).contains(&f), "factor {f}");
                assert_eq!(f, noise.factor(t, m), "deterministic per pair");
            }
        }
    }

    #[test]
    fn different_seeds_are_different_worlds() {
        let a = NoiseModel::new(0.3, 1);
        let b = NoiseModel::new(0.3, 2);
        let differing = (0..100).filter(|&t| a.factor(t, 0) != b.factor(t, 0)).count();
        assert!(differing > 90);
    }

    #[test]
    fn realized_makespan_within_noise_envelope() {
        let inst = EtcInstance::toy(24, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let s = Schedule::random(&inst, &mut rng);
        let noise = NoiseModel::new(0.25, 11);
        let (report, gap) = run_under_noise(&inst, &s, &noise, &MctRescheduler);
        assert!(report.validate().is_ok());
        // Every runtime is within ±25%, so the realized makespan is too.
        assert!(gap.abs() <= 0.25 + 1e-9, "gap {gap}");
    }

    #[test]
    fn gap_is_zero_without_noise() {
        let inst = EtcInstance::toy(24, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let s = Schedule::random(&inst, &mut rng);
        let (_, gap) = run_under_noise(&inst, &s, &NoiseModel::new(0.0, 0), &MctRescheduler);
        assert!(gap.abs() < 1e-12);
    }

    #[test]
    fn larger_epsilon_larger_spread() {
        let small = NoiseModel::new(0.1, 9);
        let large = NoiseModel::new(1.0, 9);
        let spread = |n: &NoiseModel| -> f64 {
            let fs: Vec<f64> = (0..200).map(|t| n.factor(t, 0)).collect();
            let max = fs.iter().cloned().fold(f64::MIN, f64::max);
            let min = fs.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(spread(&large) > spread(&small));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_rejected() {
        NoiseModel::new(-0.1, 0);
    }
}
