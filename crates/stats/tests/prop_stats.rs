//! Property tests on the statistics toolkit.

use pa_cga_stats::{mann_whitney_u, BoxplotStats, Descriptive, Quartiles};
use proptest::prelude::*;

fn sample_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..100)
}

proptest! {
    #[test]
    fn descriptive_bounds(sample in sample_strategy()) {
        let d = Descriptive::from_sample(&sample);
        prop_assert!(d.min <= d.mean + 1e-9);
        prop_assert!(d.mean <= d.max + 1e-9);
        prop_assert!(d.std_dev >= 0.0);
        prop_assert_eq!(d.n, sample.len());
    }

    #[test]
    fn quartiles_ordered_and_within_range(sample in sample_strategy()) {
        let q = Quartiles::from_sample(&sample);
        let d = Descriptive::from_sample(&sample);
        prop_assert!(d.min <= q.q1 + 1e-9);
        prop_assert!(q.q1 <= q.median + 1e-9);
        prop_assert!(q.median <= q.q3 + 1e-9);
        prop_assert!(q.q3 <= d.max + 1e-9);
        prop_assert!(q.iqr() >= -1e-9);
    }

    #[test]
    fn shifting_a_sample_shifts_its_quartiles(
        sample in sample_strategy(),
        shift in -1e5f64..1e5,
    ) {
        let q0 = Quartiles::from_sample(&sample);
        let shifted: Vec<f64> = sample.iter().map(|&x| x + shift).collect();
        let q1 = Quartiles::from_sample(&shifted);
        let tol = 1e-6 * (1.0 + shift.abs() + q0.median.abs());
        prop_assert!((q1.median - (q0.median + shift)).abs() < tol);
        prop_assert!((q1.iqr() - q0.iqr()).abs() < tol);
    }

    #[test]
    fn boxplot_invariants(sample in sample_strategy()) {
        let b = BoxplotStats::from_sample(&sample);
        prop_assert!(b.notch_lo <= b.quartiles.median + 1e-9);
        prop_assert!(b.quartiles.median <= b.notch_hi + 1e-9);
        prop_assert!(b.whisker_lo <= b.whisker_hi + 1e-9);
        // Whiskers sit inside the Tukey fences.
        let fence_lo = b.quartiles.q1 - 1.5 * b.quartiles.iqr();
        let fence_hi = b.quartiles.q3 + 1.5 * b.quartiles.iqr();
        prop_assert!(b.whisker_lo >= fence_lo - 1e-9);
        prop_assert!(b.whisker_hi <= fence_hi + 1e-9);
        // Outliers + inliers = n.
        prop_assert!(b.outliers.len() <= b.n);
        // A sample never "differs" from itself.
        prop_assert!(!b.medians_differ(&b.clone()));
    }

    #[test]
    fn mann_whitney_p_in_unit_interval(
        a in proptest::collection::vec(-1e4f64..1e4, 2..50),
        b in proptest::collection::vec(-1e4f64..1e4, 2..50),
    ) {
        let r = mann_whitney_u(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.p_value), "p = {}", r.p_value);
        prop_assert!(r.u >= 0.0);
        // Symmetry.
        let r2 = mann_whitney_u(&b, &a);
        prop_assert!((r.p_value - r2.p_value).abs() < 1e-9);
    }

    #[test]
    fn mann_whitney_shift_monotone(
        a in proptest::collection::vec(0.0f64..100.0, 10..40),
    ) {
        // A hugely shifted copy must be at least as significant as an
        // identical copy.
        let same = mann_whitney_u(&a, &a).p_value;
        let shifted: Vec<f64> = a.iter().map(|&x| x + 1e6).collect();
        let far = mann_whitney_u(&a, &shifted).p_value;
        prop_assert!(far <= same + 1e-9, "far {far} vs same {same}");
    }
}
