//! Friedman rank test for comparing k algorithms over n problem instances
//! — the appropriate omnibus test for Table 2's layout (each instance is a
//! block, each algorithm a treatment). Lower values rank better
//! (makespans). The p-value uses the χ² approximation with k−1 degrees of
//! freedom, computed via the regularized lower incomplete gamma function.

use serde::{Deserialize, Serialize};

/// Result of a Friedman test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FriedmanResult {
    /// Mean rank per algorithm (1 = best possible).
    pub mean_ranks: Vec<f64>,
    /// The Friedman χ² statistic.
    pub chi_square: f64,
    /// Degrees of freedom (k − 1).
    pub dof: usize,
    /// Approximate p-value of the null "all algorithms perform alike".
    pub p_value: f64,
}

impl FriedmanResult {
    /// Index of the best (lowest mean rank) algorithm.
    pub fn best(&self) -> usize {
        let mut best = 0;
        for i in 1..self.mean_ranks.len() {
            if self.mean_ranks[i] < self.mean_ranks[best] {
                best = i;
            }
        }
        best
    }
}

/// Regularized lower incomplete gamma function P(a, x), by series
/// expansion (x < a+1) or continued fraction (x ≥ a+1). Standard
/// Numerical-Recipes formulation; accurate to ~1e-10 for our range.
fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain");
    if x == 0.0 {
        return 0.0;
    }
    let ln_gamma_a = ln_gamma(a);
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma_a).exp()
    } else {
        // Continued fraction for Q(a, x); P = 1 − Q.
        let mut b = x + 1.0 - a;
        let mut c = 1e308;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma_a).exp() * h
    }
}

/// Lanczos log-gamma (g = 7, n = 9), |ε| < 1e-13 for positive arguments.
#[allow(clippy::excessive_precision)]
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Survival function of the χ² distribution with `dof` degrees of freedom.
pub fn chi_square_sf(x: f64, dof: usize) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    (1.0 - gamma_p(dof as f64 / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

/// Runs the Friedman test. `scores[block][algorithm]`, lower = better.
///
/// # Panics
///
/// Panics with fewer than 2 algorithms or 2 blocks, or ragged input.
pub fn friedman_test(scores: &[Vec<f64>]) -> FriedmanResult {
    let n = scores.len();
    assert!(n >= 2, "need at least two blocks (instances)");
    let k = scores[0].len();
    assert!(k >= 2, "need at least two algorithms");

    let mut rank_sums = vec![0.0; k];
    for row in scores {
        assert_eq!(row.len(), k, "ragged score matrix");
        // Average ranks with ties.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).expect("finite scores"));
        let mut i = 0;
        while i < k {
            let mut j = i;
            while j + 1 < k && row[order[j + 1]] == row[order[i]] {
                j += 1;
            }
            let avg_rank = (i + j + 2) as f64 / 2.0;
            for &idx in &order[i..=j] {
                rank_sums[idx] += avg_rank;
            }
            i = j + 1;
        }
    }

    let mean_ranks: Vec<f64> = rank_sums.iter().map(|&r| r / n as f64).collect();
    let nf = n as f64;
    let kf = k as f64;
    let sum_r2: f64 = rank_sums.iter().map(|&r| r * r).sum();
    let chi_square = 12.0 / (nf * kf * (kf + 1.0)) * sum_r2 - 3.0 * nf * (kf + 1.0);
    let dof = k - 1;
    FriedmanResult { mean_ranks, chi_square, dof, p_value: chi_square_sf(chi_square, dof) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi_square_sf_reference_values() {
        // χ²(df=1): SF(3.841) ≈ 0.05; χ²(df=2): SF(5.991) ≈ 0.05.
        assert!((chi_square_sf(3.841, 1) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(5.991, 2) - 0.05).abs() < 1e-3);
        assert_eq!(chi_square_sf(0.0, 3), 1.0);
        assert!(chi_square_sf(100.0, 3) < 1e-10);
    }

    #[test]
    fn clear_winner_detected() {
        // Algorithm 0 always best, 2 always worst, across 12 blocks.
        let scores: Vec<Vec<f64>> =
            (0..12).map(|i| vec![1.0 + i as f64, 5.0 + i as f64, 9.0 + i as f64]).collect();
        let r = friedman_test(&scores);
        assert_eq!(r.best(), 0);
        assert!((r.mean_ranks[0] - 1.0).abs() < 1e-12);
        assert!((r.mean_ranks[2] - 3.0).abs() < 1e-12);
        // Perfect separation over 12 blocks: χ² = 12·2 = 24, p ≈ 6e-6.
        assert!((r.chi_square - 24.0).abs() < 1e-9);
        assert!(r.p_value < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn identical_algorithms_not_significant() {
        let scores: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64; 3]).collect();
        let r = friedman_test(&scores);
        // All tied: every mean rank is 2, χ² = 0, p = 1.
        for &mr in &r.mean_ranks {
            assert!((mr - 2.0).abs() < 1e-12);
        }
        assert!(r.chi_square.abs() < 1e-9);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn mixed_results_moderate_p() {
        // Two algorithms trading wins 50/50 should be far from significant.
        let scores: Vec<Vec<f64>> =
            (0..10).map(|i| if i % 2 == 0 { vec![1.0, 2.0] } else { vec![2.0, 1.0] }).collect();
        let r = friedman_test(&scores);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    #[should_panic(expected = "two blocks")]
    fn single_block_rejected() {
        friedman_test(&[vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        friedman_test(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
