//! Descriptive statistics over a sample of run results.

use serde::{Deserialize, Serialize};

/// Summary statistics of a non-empty sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Descriptive {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n = 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Descriptive {
    /// Computes the summary.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values.
    pub fn from_sample(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "empty sample");
        let n = sample.len();
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in sample {
            assert!(x.is_finite(), "non-finite sample value {x}");
            sum += x;
            min = min.min(x);
            max = max.max(x);
        }
        let mean = sum / n as f64;
        let std_dev = if n > 1 {
            let ss: f64 = sample.iter().map(|&x| (x - mean) * (x - mean)).sum();
            (ss / (n as f64 - 1.0)).sqrt()
        } else {
            0.0
        };
        Self { n, mean, std_dev, min, max }
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev / (self.n as f64).sqrt()
    }

    /// Coefficient of variation (`std/mean`), 0 if the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let d = Descriptive::from_sample(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(d.n, 8);
        assert!((d.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic dataset is sqrt(32/7).
        assert!((d.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
    }

    #[test]
    fn single_element() {
        let d = Descriptive::from_sample(&[3.5]);
        assert_eq!(d.mean, 3.5);
        assert_eq!(d.std_dev, 0.0);
        assert_eq!(d.std_err(), 0.0);
    }

    #[test]
    fn cv_and_std_err() {
        let d = Descriptive::from_sample(&[1.0, 3.0]);
        assert_eq!(d.mean, 2.0);
        assert!((d.std_dev - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((d.std_err() - 1.0).abs() < 1e-12);
        assert!((d.cv() - std::f64::consts::SQRT_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_zero_mean() {
        let d = Descriptive::from_sample(&[-1.0, 1.0]);
        assert_eq!(d.cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        Descriptive::from_sample(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_panics() {
        Descriptive::from_sample(&[1.0, f64::NAN]);
    }
}
