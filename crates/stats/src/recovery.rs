//! Time-to-recover metrics for dynamic rescheduling.
//!
//! A schedule-stream session answers every grid event twice over: the
//! **warm** path repairs the previous PA-CGA population and resumes
//! evolution, the **cold** path restarts from scratch with the same
//! evaluation budget. Each event yields one [`RecoverySample`]; a
//! [`RecoveryStats`] accumulator folds them into the profile the chaos
//! harness asserts on — recovery wall-clock percentiles plus the
//! warm-vs-cold win ledger.
//!
//! "Recovery" is deliberately defined in *evaluations*, not wall-clock:
//! `recovery_evals` is how many post-repair evaluations the warm path
//! needed before its best makespan first matched the cold restart's
//! final best. The engine is deterministic at `threads = 1`, so this
//! quantity is exactly reproducible across runs and hosts — the CI
//! assertion that warm-start beats cold restart never flakes on machine
//! speed. Wall-clock (`recovery_ms`) is still recorded and reported
//! (p50/p99) because it is what an operator experiences.

use crate::latency::LatencySummary;
use serde::{Deserialize, Serialize};

/// What one reschedule event measured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoverySample {
    /// Wall-clock from event receipt to the warm response, in ms.
    pub recovery_ms: f64,
    /// Post-repair evaluations until the warm best first reached the
    /// cold restart's final best (`budget_evals` if it never did).
    pub recovery_evals: u64,
    /// The per-event evaluation budget both paths were given.
    pub budget_evals: u64,
    /// Warm best makespan after the full budget.
    pub warm_makespan: f64,
    /// Cold-restart best makespan after the full budget.
    pub cold_makespan: f64,
}

impl RecoverySample {
    /// Did the warm start beat the cold restart on time-to-recover?
    /// True iff the warm path reached the cold path's final quality
    /// strictly before spending the full budget the cold path needed.
    pub fn warm_wins(&self) -> bool {
        self.recovery_evals < self.budget_evals
    }

    /// Makespan delta versus the cold restart (negative = warm better).
    pub fn delta_vs_cold(&self) -> f64 {
        self.warm_makespan - self.cold_makespan
    }
}

/// Accumulated recovery profile over a session or chaos run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    samples: Vec<RecoverySample>,
}

impl RecoveryStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event's sample.
    pub fn record(&mut self, sample: RecoverySample) {
        self.samples.push(sample);
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples, in event order.
    pub fn samples(&self) -> &[RecoverySample] {
        &self.samples
    }

    /// Events where the warm start recovered before the cold budget.
    pub fn warm_wins(&self) -> usize {
        self.samples.iter().filter(|s| s.warm_wins()).count()
    }

    /// Events where it did not.
    pub fn warm_losses(&self) -> usize {
        self.samples.len() - self.warm_wins()
    }

    /// Fraction of events the warm start won; 0 when empty.
    pub fn win_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.warm_wins() as f64 / self.samples.len() as f64
    }

    /// Mean evaluations the warm path saved versus the cold budget.
    pub fn mean_evals_saved(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let saved: u64 =
            self.samples.iter().map(|s| s.budget_evals.saturating_sub(s.recovery_evals)).sum();
        saved as f64 / self.samples.len() as f64
    }

    /// Recovery wall-clock percentile profile; `None` when empty.
    pub fn latency(&self) -> Option<LatencySummary> {
        if self.samples.is_empty() {
            return None;
        }
        let ms: Vec<f64> = self.samples.iter().map(|s| s.recovery_ms).collect();
        Some(LatencySummary::from_millis(&ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(recovery_evals: u64, budget: u64, warm: f64, cold: f64, ms: f64) -> RecoverySample {
        RecoverySample {
            recovery_ms: ms,
            recovery_evals,
            budget_evals: budget,
            warm_makespan: warm,
            cold_makespan: cold,
        }
    }

    #[test]
    fn win_iff_recovered_under_budget() {
        assert!(sample(0, 1000, 9.0, 10.0, 1.0).warm_wins());
        assert!(sample(999, 1000, 10.0, 10.0, 1.0).warm_wins());
        assert!(!sample(1000, 1000, 11.0, 10.0, 1.0).warm_wins());
    }

    #[test]
    fn ledger_and_rates() {
        let mut stats = RecoveryStats::new();
        assert!(stats.is_empty());
        assert_eq!(stats.win_rate(), 0.0);
        assert!(stats.latency().is_none());
        stats.record(sample(100, 1000, 9.0, 10.0, 2.0));
        stats.record(sample(1000, 1000, 12.0, 10.0, 8.0));
        stats.record(sample(0, 1000, 8.0, 10.0, 4.0));
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.warm_wins(), 2);
        assert_eq!(stats.warm_losses(), 1);
        assert!((stats.win_rate() - 2.0 / 3.0).abs() < 1e-12);
        // Saved: 900 + 0 + 1000 over 3 events.
        assert!((stats.mean_evals_saved() - 1900.0 / 3.0).abs() < 1e-9);
        let lat = stats.latency().unwrap();
        assert_eq!(lat.count, 3);
        assert_eq!(lat.max_ms, 8.0);
    }

    #[test]
    fn delta_vs_cold_signs() {
        assert!(sample(0, 10, 9.0, 10.0, 0.0).delta_vs_cold() < 0.0);
        assert!(sample(10, 10, 11.0, 10.0, 0.0).delta_vs_cold() > 0.0);
    }
}
