//! Fixed-width ASCII tables for harness output (Table 2 and friends).

/// A simple right-aligned ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with a separator under the header; first column
    /// left-aligned, the rest right-aligned (the paper's table style).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a makespan the way the paper prints Table 2 (one decimal for
/// large values, more precision for small ones).
pub fn fmt_makespan(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a `mean ± std` cell in [`fmt_makespan`]'s scaling — the sweep
/// harness' per-instance summary currency.
pub fn fmt_mean_std(mean: f64, std_dev: f64) -> String {
    format!("{} ± {}", fmt_makespan(mean), fmt_makespan(std_dev))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["instance", "makespan"]);
        t.row_str(&["u_c_hihi.0", "7518600.7"]);
        t.row_str(&["u_c_lolo.0", "5261.4"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("instance"));
        assert!(lines[1].starts_with("---"));
        // Right-aligned numeric column: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[2].ends_with("7518600.7"));
        assert!(lines[3].ends_with("5261.4"));
    }

    #[test]
    fn fmt_makespan_scales() {
        assert_eq!(fmt_makespan(7_518_600.71), "7518600.7");
        assert_eq!(fmt_makespan(5261.4), "5261.40");
    }

    #[test]
    fn fmt_mean_std_pairs() {
        assert_eq!(fmt_mean_std(7_518_600.71, 1234.56), "7518600.7 ± 1234.56");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(&["a", "b"]).row_str(&["only one"]);
    }

    #[test]
    fn n_rows_counts() {
        let mut t = Table::new(&["x"]);
        assert_eq!(t.n_rows(), 0);
        t.row_str(&["1"]);
        assert_eq!(t.n_rows(), 1);
    }
}
