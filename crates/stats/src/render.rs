//! ASCII rendering of box plots — the terminal stand-in for Figure 5.
//!
//! Each sample renders as one line:
//!
//! ```text
//! opx/5   |     o----[  ===|===  ]------|      o
//! ```
//!
//! `[`/`]` are the quartiles, `|` inside the box is the median, `===` the
//! notch extent, `-` the whiskers, `o` outliers.

use crate::boxplot::BoxplotStats;

/// Renders several labelled box plots on a shared horizontal axis.
pub fn render_boxplots(labelled: &[(&str, &BoxplotStats)], width: usize) -> String {
    assert!(width >= 20, "width too small to draw");
    assert!(!labelled.is_empty(), "nothing to draw");

    let lo = labelled
        .iter()
        .map(|(_, b)| b.outliers.first().copied().unwrap_or(b.whisker_lo).min(b.whisker_lo))
        .fold(f64::INFINITY, f64::min);
    let hi = labelled
        .iter()
        .map(|(_, b)| b.outliers.last().copied().unwrap_or(b.whisker_hi).max(b.whisker_hi))
        .fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let label_w = labelled.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);

    let scale = |v: f64| -> usize {
        (((v - lo) / span) * (width - 1) as f64).round().clamp(0.0, (width - 1) as f64) as usize
    };

    let mut out = String::new();
    for (label, b) in labelled {
        let mut line = vec![b' '; width];
        let w_lo = scale(b.whisker_lo);
        let w_hi = scale(b.whisker_hi);
        let q1 = scale(b.quartiles.q1);
        let q3 = scale(b.quartiles.q3);
        let med = scale(b.quartiles.median);
        let n_lo = scale(b.notch_lo.max(b.quartiles.q1));
        let n_hi = scale(b.notch_hi.min(b.quartiles.q3));

        for cell in line.iter_mut().take(w_hi + 1).skip(w_lo) {
            *cell = b'-';
        }
        for cell in line.iter_mut().take(q3 + 1).skip(q1) {
            *cell = b' ';
        }
        for cell in line.iter_mut().take(n_hi + 1).skip(n_lo) {
            *cell = b'=';
        }
        line[q1] = b'[';
        line[q3] = b']';
        line[med] = b'|';
        for &o in &b.outliers {
            line[scale(o)] = b'o';
        }
        out.push_str(&format!("{label:<label_w$} {}\n", String::from_utf8(line).expect("ascii")));
    }
    out.push_str(&format!(
        "{:<label_w$} {:<.4e}{}{:>.4e}\n",
        "",
        lo,
        " ".repeat(width.saturating_sub(22)),
        hi
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(values: &[f64]) -> BoxplotStats {
        BoxplotStats::from_sample(values)
    }

    #[test]
    fn renders_all_labels() {
        let a = stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = stats(&[2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = render_boxplots(&[("opx/5", &a), ("tpx/10", &b)], 60);
        assert!(out.contains("opx/5"));
        assert!(out.contains("tpx/10"));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn box_glyphs_present() {
        // Spread wide enough that quartile/median cells don't collide.
        let a = stats(&[10.0, 20.0, 30.0, 40.0, 200.0]);
        let out = render_boxplots(&[("x", &a)], 60);
        let line = out.lines().next().unwrap();
        assert!(line.contains('['), "{line}");
        assert!(line.contains(']'), "{line}");
        assert!(line.contains('|'), "{line}");
        assert!(line.contains('o'), "outlier glyph missing: {line}");
    }

    #[test]
    fn degenerate_sample_does_not_panic() {
        // All glyphs collapse onto one cell; the median glyph wins.
        let a = stats(&[5.0, 5.0, 5.0]);
        let out = render_boxplots(&[("flat", &a)], 40);
        assert!(out.contains('|'));
    }

    #[test]
    #[should_panic(expected = "width too small")]
    fn tiny_width_panics() {
        let a = stats(&[1.0, 2.0]);
        render_boxplots(&[("x", &a)], 5);
    }
}
