//! Mann-Whitney U rank-sum test (two-sided, normal approximation with tie
//! correction).
//!
//! The paper's significance statements come from notch overlap (see
//! [`crate::boxplot`]); the harness reports this distribution-free test as
//! a second, sharper check when comparing operator configurations over
//! independent runs.

use serde::{Deserialize, Serialize};

/// Result of a two-sided Mann-Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MannWhitneyResult {
    /// The smaller of U₁ and U₂.
    pub u: f64,
    /// Standardized statistic (0 when both samples have a single value).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_value: f64,
}

impl MannWhitneyResult {
    /// Convenience: significant at level `alpha`?
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7) — plenty for
/// test decisions at conventional α levels.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal survival function `P(Z > z)`.
fn normal_sf(z: f64) -> f64 {
    0.5 * (1.0 - erf(z / std::f64::consts::SQRT_2))
}

/// Assigns average ranks to the pooled sample; returns (ranks of `a`'s
/// elements summed, tie-correction term Σ(t³−t)).
fn rank_sum_of_first(a: &[f64], b: &[f64]) -> (f64, f64) {
    let mut pooled: Vec<(f64, bool)> =
        a.iter().map(|&x| (x, true)).chain(b.iter().map(|&x| (x, false))).collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite sample values"));

    let mut r1 = 0.0;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let tie_len = (j - i + 1) as f64;
        // Average rank of the tied block (1-based ranks i+1 ..= j+1).
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for item in &pooled[i..=j] {
            if item.1 {
                r1 += avg_rank;
            }
        }
        if tie_len > 1.0 {
            tie_term += tie_len * tie_len * tie_len - tie_len;
        }
        i = j + 1;
    }
    (r1, tie_term)
}

/// Two-sided Mann-Whitney U test on two independent samples.
///
/// # Panics
///
/// Panics if either sample is empty or contains non-finite values.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> MannWhitneyResult {
    assert!(!a.is_empty() && !b.is_empty(), "both samples must be non-empty");
    for &x in a.iter().chain(b.iter()) {
        assert!(x.is_finite(), "non-finite sample value {x}");
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    let (r1, tie_term) = rank_sum_of_first(a, b);
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let u2 = n1 * n2 - u1;
    let u = u1.min(u2);

    let n = n1 + n2;
    let mu = n1 * n2 / 2.0;
    let var = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var <= 0.0 {
        // All values tied: no evidence of difference.
        return MannWhitneyResult { u, z: 0.0, p_value: 1.0 };
    }
    // Continuity correction toward the mean.
    let z = (u - mu + 0.5).min(0.0) / var.sqrt();
    let p = (2.0 * normal_sf(-z)).min(1.0);
    MannWhitneyResult { u, z, p_value: p }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = mann_whitney_u(&a, &a);
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn disjoint_samples_significant() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| 100.0 + i as f64).collect();
        let r = mann_whitney_u(&a, &b);
        assert_eq!(r.u, 0.0);
        assert!(r.significant(0.001), "p = {}", r.p_value);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = [1.0, 5.0, 9.0, 12.0];
        let b = [2.0, 4.0, 8.0, 30.0, 31.0];
        let r1 = mann_whitney_u(&a, &b);
        let r2 = mann_whitney_u(&b, &a);
        assert!((r1.u - r2.u).abs() < 1e-12);
        assert!((r1.p_value - r2.p_value).abs() < 1e-9);
    }

    #[test]
    fn known_example_matches_scipy() {
        // scipy.stats.mannwhitneyu([1,2,3], [4,5,6], method="asymptotic",
        // use_continuity=True) -> U=0, p≈0.0765.
        let r = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(r.u, 0.0);
        assert!((r.p_value - 0.0765).abs() < 0.005, "p = {}", r.p_value);
    }

    #[test]
    fn ties_handled() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [2.0, 3.0, 3.0, 4.0];
        let r = mann_whitney_u(&a, &b);
        assert!(r.p_value > 0.05 && r.p_value <= 1.0);
    }

    #[test]
    fn all_tied_gives_p_one() {
        let a = [5.0, 5.0, 5.0];
        let b = [5.0, 5.0];
        let r = mann_whitney_u(&a, &b);
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 approximation is accurate to ~1.5e-7.
        assert!((erf(0.0) - 0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        mann_whitney_u(&[], &[1.0]);
    }
}
