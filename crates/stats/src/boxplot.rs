//! Notched box-plot statistics (Figure 5).
//!
//! MATLAB's notched box plot — the one in the paper — draws notches at
//! `median ± 1.57 · IQR / √n` (McGill, Tukey & Larsen 1978). When two
//! boxes' notches do **not** overlap, their true medians differ at roughly
//! 95% confidence; the paper uses exactly this criterion to conclude
//! "tpx/10 performs better than opx/5 for all instances".

use crate::quartiles::Quartiles;
use serde::{Deserialize, Serialize};

/// McGill/Tukey notch half-width constant.
pub const NOTCH_CONSTANT: f64 = 1.57;

/// Whisker reach in IQR multiples (Tukey's 1.5 rule).
pub const WHISKER_IQR_FACTOR: f64 = 1.5;

/// Full box-plot statistics of one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    /// Sample size.
    pub n: usize,
    /// Quartiles (box body).
    pub quartiles: Quartiles,
    /// Lower notch bound `median − 1.57·IQR/√n`.
    pub notch_lo: f64,
    /// Upper notch bound `median + 1.57·IQR/√n`.
    pub notch_hi: f64,
    /// Lowest sample value within `q1 − 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest sample value within `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Values outside the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxplotStats {
    /// Computes box-plot statistics of a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values.
    pub fn from_sample(sample: &[f64]) -> Self {
        let quartiles = Quartiles::from_sample(sample);
        let n = sample.len();
        let iqr = quartiles.iqr();
        let half_notch = NOTCH_CONSTANT * iqr / (n as f64).sqrt();
        let fence_lo = quartiles.q1 - WHISKER_IQR_FACTOR * iqr;
        let fence_hi = quartiles.q3 + WHISKER_IQR_FACTOR * iqr;

        let mut whisker_lo = f64::INFINITY;
        let mut whisker_hi = f64::NEG_INFINITY;
        let mut outliers = Vec::new();
        for &x in sample {
            if x < fence_lo || x > fence_hi {
                outliers.push(x);
            } else {
                whisker_lo = whisker_lo.min(x);
                whisker_hi = whisker_hi.max(x);
            }
        }
        // Degenerate case: everything is an outlier only if IQR is NaN,
        // impossible for finite input — whiskers always exist because the
        // quartiles themselves lie inside the fences.
        outliers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self {
            n,
            quartiles,
            notch_lo: quartiles.median - half_notch,
            notch_hi: quartiles.median + half_notch,
            whisker_lo,
            whisker_hi,
            outliers,
        }
    }

    /// The paper's significance criterion: `true` when the notches of the
    /// two samples do **not** overlap, i.e. the true medians differ with
    /// ≈95% confidence.
    pub fn medians_differ(&self, other: &BoxplotStats) -> bool {
        self.notch_hi < other.notch_lo || other.notch_hi < self.notch_lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notch_width_formula() {
        let sample: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let b = BoxplotStats::from_sample(&sample);
        // q1=3, median=5, q3=7, iqr=4, n=9 -> half notch = 1.57*4/3.
        let expect = 1.57 * 4.0 / 3.0;
        assert!((b.notch_hi - (5.0 + expect)).abs() < 1e-12);
        assert!((b.notch_lo - (5.0 - expect)).abs() < 1e-12);
    }

    #[test]
    fn whiskers_without_outliers() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = BoxplotStats::from_sample(&sample);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn outlier_detected() {
        let sample = [1.0, 2.0, 3.0, 4.0, 100.0];
        let b = BoxplotStats::from_sample(&sample);
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_hi < 100.0);
    }

    #[test]
    fn clearly_separated_samples_differ() {
        let a: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 20.0 + (i % 5) as f64 * 0.1).collect();
        let sa = BoxplotStats::from_sample(&a);
        let sb = BoxplotStats::from_sample(&b);
        assert!(sa.medians_differ(&sb));
        assert!(sb.medians_differ(&sa));
    }

    #[test]
    fn overlapping_samples_do_not_differ() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..10).map(|i| i as f64 + 0.5).collect();
        let sa = BoxplotStats::from_sample(&a);
        let sb = BoxplotStats::from_sample(&b);
        assert!(!sa.medians_differ(&sb));
    }

    #[test]
    fn identical_samples_never_differ() {
        let a = [3.0, 3.0, 3.0, 3.0];
        let sa = BoxplotStats::from_sample(&a);
        assert!(!sa.medians_differ(&sa.clone()));
    }
}
