//! Minimal CSV writing (RFC 4180 quoting) for persisting harness results
//! next to the rendered tables — no external dependency needed.

use crate::series::SeriesPoint;
use std::io::{self, Write};

/// Quotes a field when it contains commas, quotes or newlines.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes one CSV row.
pub fn write_row<W: Write>(w: &mut W, fields: &[String]) -> io::Result<()> {
    let line: Vec<String> = fields.iter().map(|f| quote(f)).collect();
    writeln!(w, "{}", line.join(","))
}

/// Writes a header + rows table.
pub fn write_table<W: Write>(w: &mut W, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let h: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    write_row(w, &h)?;
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row width mismatch");
        write_row(w, row)?;
    }
    Ok(())
}

/// Writes an aggregated generation series (`generation,mean,count`).
pub fn write_series<W: Write>(w: &mut W, series: &[SeriesPoint]) -> io::Result<()> {
    write_row(w, &["generation".into(), "mean".into(), "count".into()])?;
    for p in series {
        write_row(w, &[p.generation.to_string(), p.mean.to_string(), p.count.to_string()])?;
    }
    Ok(())
}

/// Parses a simple CSV string back into rows (supports quoted fields; used
/// by tests and by tooling that reloads saved results).
pub fn parse(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut chars = line.chars().peekable();
        let mut in_quotes = false;
        while let Some(c) = chars.next() {
            match (c, in_quotes) {
                ('"', false) => in_quotes = true,
                ('"', true) => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                (',', false) => {
                    fields.push(std::mem::take(&mut field));
                }
                (c, _) => field.push(c),
            }
        }
        fields.push(field);
        rows.push(fields);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_round_trip() {
        let mut buf = Vec::new();
        write_table(
            &mut buf,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let rows = parse(&text);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["a", "b"]);
        assert_eq!(rows[2], vec!["3", "4"]);
    }

    #[test]
    fn quoting_round_trip() {
        let tricky =
            vec!["has,comma".to_string(), "has \"quotes\"".to_string(), "plain".to_string()];
        let mut buf = Vec::new();
        write_row(&mut buf, &tricky).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"has,comma\""));
        let rows = parse(&text);
        assert_eq!(rows[0], tricky);
    }

    #[test]
    fn series_format() {
        let series = vec![
            SeriesPoint { generation: 0, mean: 10.5, count: 8 },
            SeriesPoint { generation: 1, mean: 9.0, count: 7 },
        ];
        let mut buf = Vec::new();
        write_series(&mut buf, &series).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let rows = parse(&text);
        assert_eq!(rows[0], vec!["generation", "mean", "count"]);
        assert_eq!(rows[1], vec!["0", "10.5", "8"]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_width_panics() {
        let mut buf = Vec::new();
        write_table(&mut buf, &["a", "b"], &[vec!["only".into()]]).unwrap();
    }
}
