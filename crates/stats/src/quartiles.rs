//! Quartiles with linear interpolation (type-7, the MATLAB/NumPy default —
//! matching the tool the paper used to draw Figure 5).

use serde::{Deserialize, Serialize};

/// First quartile, median and third quartile of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quartiles {
    /// 25th percentile.
    pub q1: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
}

/// Type-7 quantile of **sorted** data.
fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl Quartiles {
    /// Computes quartiles of a sample (unsorted input accepted).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values.
    pub fn from_sample(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "empty sample");
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample values"));
        Self {
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Arbitrary type-7 percentile of a sample, `p` in `[0, 1]`.
pub fn percentile(sample: &[f64], p: f64) -> f64 {
    assert!(!sample.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&p), "p = {p} out of [0,1]");
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample values"));
    quantile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_length_median_exact() {
        let q = Quartiles::from_sample(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.iqr(), 2.0);
    }

    #[test]
    fn even_length_interpolates() {
        let q = Quartiles::from_sample(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q.median, 2.5);
        assert_eq!(q.q1, 1.75);
        assert_eq!(q.q3, 3.25);
    }

    #[test]
    fn unsorted_input_ok() {
        let q = Quartiles::from_sample(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(q.median, 3.0);
    }

    #[test]
    fn single_element() {
        let q = Quartiles::from_sample(&[7.0]);
        assert_eq!(q.q1, 7.0);
        assert_eq!(q.median, 7.0);
        assert_eq!(q.q3, 7.0);
        assert_eq!(q.iqr(), 0.0);
    }

    #[test]
    fn percentile_extremes() {
        let s = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&s, 0.0), 10.0);
        assert_eq!(percentile(&s, 1.0), 30.0);
        assert_eq!(percentile(&s, 0.5), 20.0);
    }

    #[test]
    fn matches_numpy_type7_reference() {
        // numpy.percentile([15, 20, 35, 40, 50], 25) == 20.0 (type 7)
        let s = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&s, 0.25), 20.0);
        // numpy.percentile(..., 40) == 29.0
        assert!((percentile(&s, 0.40) - 29.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        Quartiles::from_sample(&[]);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_percentile_panics() {
        percentile(&[1.0], 1.5);
    }
}
