//! The paper's speedup metric (Eq. 5).
//!
//! Because the stop condition is fixed wall time, the paper replaces
//! `time(1)/time(n)` with the ratio of **total evaluations performed**:
//! `S(n) = #evaluations(n) / #evaluations(1)`, plotted as a percentage
//! ("Evaluations increase %", Figure 4 — 100% means no speedup).

/// Converts mean evaluation counts per thread count into Figure 4's
/// percentage series. `evals[i]` is the mean evaluation count with `i+1`
/// threads; `evals\[0\]` is the single-thread baseline.
///
/// # Panics
///
/// Panics if `evals` is empty or the baseline is zero/non-finite.
pub fn speedup_percentages(evals: &[f64]) -> Vec<f64> {
    assert!(!evals.is_empty(), "need at least the 1-thread baseline");
    let base = evals[0];
    assert!(base.is_finite() && base > 0.0, "baseline evaluations must be positive");
    evals.iter().map(|&e| 100.0 * e / base).collect()
}

/// Classic time-based speedup `time(1)/time(n)` for completeness (Eq. 4).
pub fn time_speedup(times: &[f64]) -> Vec<f64> {
    assert!(!times.is_empty(), "need at least the 1-processor baseline");
    let base = times[0];
    assert!(base.is_finite() && base > 0.0, "baseline time must be positive");
    times.iter().map(|&t| base / t).collect()
}

/// Parallel efficiency `S(n)/n` from a speedup series (index i ↔ n = i+1).
pub fn efficiency(speedups: &[f64]) -> Vec<f64> {
    speedups.iter().enumerate().map(|(i, &s)| s / (i + 1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_100_percent() {
        let s = speedup_percentages(&[50_000.0, 90_000.0, 120_000.0]);
        assert_eq!(s[0], 100.0);
        assert_eq!(s[1], 180.0);
        assert_eq!(s[2], 240.0);
    }

    #[test]
    fn degradation_below_100() {
        let s = speedup_percentages(&[50_000.0, 40_000.0]);
        assert_eq!(s[1], 80.0);
    }

    #[test]
    fn time_speedup_classic() {
        let s = time_speedup(&[90.0, 45.0, 30.0]);
        assert_eq!(s, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn efficiency_from_speedup() {
        let e = efficiency(&[1.0, 2.0, 2.4]);
        assert_eq!(e[0], 1.0);
        assert_eq!(e[1], 1.0);
        assert!((e[2] - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn zero_baseline_panics() {
        speedup_percentages(&[0.0, 10.0]);
    }
}
