//! Latency summaries for service load tests.
//!
//! The `pacga bench-serve` load generator records one wall-clock sample
//! per request/response round trip and reports the percentile profile a
//! service operator reads off a dashboard: p50/p90/p99 plus mean and max.
//! Percentiles are type-7 ([`crate::quartiles::percentile`]), matching
//! every other quantile this crate computes.

use crate::descriptive::Descriptive;
use crate::quartiles::percentile;
use serde::{Deserialize, Serialize};

/// A percentile summary of request latencies, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// 50th percentile (median).
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Slowest observed request.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarizes a sample of latencies given in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values (a latency sample
    /// is always a measured duration).
    pub fn from_millis(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "empty latency sample");
        let d = Descriptive::from_sample(samples);
        Self {
            count: samples.len(),
            mean_ms: d.mean,
            p50_ms: percentile(samples, 0.50),
            p90_ms: percentile(samples, 0.90),
            p99_ms: percentile(samples, 0.99),
            max_ms: d.max,
        }
    }

    /// Summarizes a sample of [`std::time::Duration`]s.
    pub fn from_durations(samples: &[std::time::Duration]) -> Self {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        Self::from_millis(&ms)
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  max {:.2}ms (mean {:.2}ms, n={})",
            self.p50_ms, self.p90_ms, self.p99_ms, self.max_ms, self.mean_ms, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn uniform_ramp_percentiles() {
        // 1..=100 ms: type-7 percentiles interpolate on n-1 gaps.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_millis(&samples);
        assert_eq!(s.count, 100);
        assert!((s.p50_ms - 50.5).abs() < 1e-9);
        assert!((s.p90_ms - 90.1).abs() < 1e-9);
        assert!((s.p99_ms - 99.01).abs() < 1e-9);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_degenerates() {
        let s = LatencySummary::from_millis(&[7.5]);
        assert_eq!(s.p50_ms, 7.5);
        assert_eq!(s.p99_ms, 7.5);
        assert_eq!(s.max_ms, 7.5);
    }

    #[test]
    fn durations_convert_to_millis() {
        let s =
            LatencySummary::from_durations(&[Duration::from_millis(2), Duration::from_millis(4)]);
        assert!((s.mean_ms - 3.0).abs() < 1e-9);
        assert_eq!(s.max_ms, 4.0);
    }

    #[test]
    fn display_mentions_every_percentile() {
        let s = LatencySummary::from_millis(&[1.0, 2.0, 3.0]);
        let text = s.to_string();
        for needle in ["p50", "p90", "p99", "max", "n=3"] {
            assert!(text.contains(needle), "{text}");
        }
    }

    #[test]
    #[should_panic(expected = "empty latency sample")]
    fn empty_sample_panics() {
        LatencySummary::from_millis(&[]);
    }
}
