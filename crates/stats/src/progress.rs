//! Job-level progress reporting for long-running scheduling sessions.
//!
//! The durable job manager (`pa_cga_service::jobs`) exposes each job's
//! live counters over `job.status`; this module turns raw
//! (done, budget, elapsed) triples into the derived figures clients
//! display — throughput, completion fraction, and an ETA — with the edge
//! cases (no budget, zero elapsed, overshoot past the budget) pinned
//! down in one place instead of ad hoc in the service.

/// A point-in-time progress reading of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobProgress {
    /// Units of work completed so far (evaluations for evaluation-budget
    /// jobs, generations for generation-budget ones).
    pub done: u64,
    /// Total budgeted units, when the termination criterion has one
    /// (wall-time jobs have `None` — fraction and ETA are undefined).
    pub budget: Option<u64>,
    /// Wall-clock seconds spent so far (summed across restarts).
    pub elapsed_s: f64,
}

impl JobProgress {
    /// Throughput in units per second; `None` until any time has been
    /// observed (avoids a meaningless near-infinite rate at job start).
    pub fn per_sec(&self) -> Option<f64> {
        (self.elapsed_s > 1e-9).then(|| self.done as f64 / self.elapsed_s)
    }

    /// Completed fraction in `[0, 1]` (clamped: sharded accounting may
    /// overshoot the budget slightly), or `None` without a budget.
    pub fn fraction(&self) -> Option<f64> {
        self.budget.filter(|&b| b > 0).map(|b| (self.done as f64 / b as f64).clamp(0.0, 1.0))
    }

    /// Estimated seconds to completion at the current rate; `None`
    /// without a budget or before any throughput is observable. A job
    /// at/past its budget reports `Some(0.0)`.
    pub fn eta_s(&self) -> Option<f64> {
        let budget = self.budget?;
        let remaining = budget.saturating_sub(self.done);
        if remaining == 0 {
            return Some(0.0);
        }
        let rate = self.per_sec()?;
        (rate > 0.0).then(|| remaining as f64 / rate)
    }
}

impl std::fmt::Display for JobProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.budget {
            Some(b) => write!(f, "{}/{b}", self.done)?,
            None => write!(f, "{}", self.done)?,
        }
        if let Some(rate) = self.per_sec() {
            write!(f, " ({rate:.0}/s")?;
            if let Some(eta) = self.eta_s() {
                write!(f, ", eta {eta:.0}s")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_figures() {
        let p = JobProgress { done: 500, budget: Some(2_000), elapsed_s: 2.0 };
        assert_eq!(p.per_sec(), Some(250.0));
        assert_eq!(p.fraction(), Some(0.25));
        assert_eq!(p.eta_s(), Some(6.0));
        assert_eq!(p.to_string(), "500/2000 (250/s, eta 6s)");
    }

    #[test]
    fn no_budget_has_no_fraction_or_eta() {
        let p = JobProgress { done: 100, budget: None, elapsed_s: 1.0 };
        assert_eq!(p.per_sec(), Some(100.0));
        assert_eq!(p.fraction(), None);
        assert_eq!(p.eta_s(), None);
        assert_eq!(p.to_string(), "100 (100/s)");
    }

    #[test]
    fn zero_elapsed_yields_no_rate() {
        let p = JobProgress { done: 10, budget: Some(100), elapsed_s: 0.0 };
        assert_eq!(p.per_sec(), None);
        assert_eq!(p.eta_s(), None);
        assert_eq!(p.to_string(), "10/100");
    }

    #[test]
    fn overshoot_clamps_and_finishes() {
        // Sharded evaluation accounting can overshoot the budget.
        let p = JobProgress { done: 2_050, budget: Some(2_000), elapsed_s: 4.0 };
        assert_eq!(p.fraction(), Some(1.0));
        assert_eq!(p.eta_s(), Some(0.0));
    }

    #[test]
    fn zero_budget_is_treated_as_budgetless() {
        let p = JobProgress { done: 5, budget: Some(0), elapsed_s: 1.0 };
        assert_eq!(p.fraction(), None);
        assert_eq!(p.eta_s(), Some(0.0));
    }

    #[test]
    fn stalled_job_has_no_eta() {
        let p = JobProgress { done: 0, budget: Some(100), elapsed_s: 5.0 };
        assert_eq!(p.per_sec(), Some(0.0));
        assert_eq!(p.eta_s(), None, "zero rate cannot extrapolate");
    }
}
