//! # Statistics toolkit for the PA-CGA experiment harness
//!
//! Everything the paper's evaluation section needs, self-contained:
//!
//! * [`Descriptive`] — mean / std / min / max over run samples (Table 2
//!   reports means over independent runs).
//! * [`Quartiles`] and [`BoxplotStats`] — five-number summaries with the
//!   **notches** MATLAB draws in Figure 5; non-overlapping notches are the
//!   paper's 95%-confidence "true medians differ" criterion.
//! * [`mann_whitney`] — the Mann-Whitney U rank-sum test, a distribution-
//!   free check we run alongside the notch criterion.
//! * [`speedup`] — the paper's evaluation-count speedup ratio (Eq. 5).
//! * [`series`] — aggregating per-generation traces across runs (Figure 6).
//! * [`latency`] — request-latency percentile profiles (p50/p90/p99) for
//!   the `pacga bench-serve` service load generator.
//! * [`progress`] — job-level throughput / fraction / ETA derivation for
//!   the durable job manager (`pacga job status`).
//! * [`recovery`] — time-to-recover metrics for dynamic rescheduling
//!   (schedule-stream sessions, `pacga chaos`): warm-vs-cold win ledger
//!   plus recovery wall-clock percentiles.
//! * [`table`] — fixed-width ASCII tables for harness output.
//! * [`render`] — ASCII box plots (Figure 5's visual, in a terminal).

pub mod boxplot;
pub mod csv;
pub mod descriptive;
pub mod friedman;
pub mod latency;
pub mod mann_whitney;
pub mod progress;
pub mod quartiles;
pub mod recovery;
pub mod render;
pub mod series;
pub mod speedup;
pub mod table;

pub use boxplot::BoxplotStats;
pub use descriptive::Descriptive;
pub use friedman::{friedman_test, FriedmanResult};
pub use latency::LatencySummary;
pub use mann_whitney::{mann_whitney_u, MannWhitneyResult};
pub use progress::JobProgress;
pub use quartiles::Quartiles;
pub use recovery::{RecoverySample, RecoveryStats};
pub use series::TraceAggregator;
pub use speedup::speedup_percentages;
pub use table::Table;
