//! Aggregation of per-generation traces across independent runs (Figure 6).
//!
//! Each run (and, inside the parallel engine, each thread) produces a trace
//! of `(generation, value)` points at its own pace; the asynchronous model
//! means different runs reach different generation counts. The aggregator
//! buckets points by generation index and reports the mean value per
//! generation over every run that reached it, which is exactly how the
//! paper plots "mean makespan vs generations" for each thread count.

use serde::{Deserialize, Serialize};

/// One aggregated point of the output series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Generation index.
    pub generation: usize,
    /// Mean value across contributing runs.
    pub mean: f64,
    /// How many runs contributed (runs that reached this generation).
    pub count: usize,
}

/// Accumulates traces and produces a per-generation mean series.
#[derive(Debug, Default, Clone)]
pub struct TraceAggregator {
    /// sums[g] and counts[g] over contributed traces.
    sums: Vec<f64>,
    counts: Vec<usize>,
}

impl TraceAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one run's trace: `trace[g]` is the value at generation `g`.
    pub fn add_trace(&mut self, trace: &[f64]) {
        if trace.len() > self.sums.len() {
            self.sums.resize(trace.len(), 0.0);
            self.counts.resize(trace.len(), 0);
        }
        for (g, &v) in trace.iter().enumerate() {
            self.sums[g] += v;
            self.counts[g] += 1;
        }
    }

    /// Adds a sparse trace of explicit `(generation, value)` points.
    pub fn add_points(&mut self, points: &[(usize, f64)]) {
        for &(g, v) in points {
            if g >= self.sums.len() {
                self.sums.resize(g + 1, 0.0);
                self.counts.resize(g + 1, 0);
            }
            self.sums[g] += v;
            self.counts[g] += 1;
        }
    }

    /// Number of generations with at least one contribution.
    pub fn len(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// True when nothing was added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The aggregated series, skipping generations nobody reached.
    pub fn series(&self) -> Vec<SeriesPoint> {
        (0..self.sums.len())
            .filter(|&g| self.counts[g] > 0)
            .map(|g| SeriesPoint {
                generation: g,
                mean: self.sums[g] / self.counts[g] as f64,
                count: self.counts[g],
            })
            .collect()
    }

    /// The series restricted to generations reached by at least
    /// `min_count` runs — avoids the noisy tail where few long runs remain.
    pub fn series_with_support(&self, min_count: usize) -> Vec<SeriesPoint> {
        self.series().into_iter().filter(|p| p.count >= min_count).collect()
    }

    /// Downsamples the series to roughly `max_points` evenly spaced points
    /// (keeps the last point), for compact harness output.
    pub fn downsampled(&self, max_points: usize) -> Vec<SeriesPoint> {
        let series = self.series();
        downsample(&series, max_points)
    }
}

/// Keeps roughly `max_points` evenly spaced elements, always retaining the
/// first and last.
pub fn downsample(series: &[SeriesPoint], max_points: usize) -> Vec<SeriesPoint> {
    assert!(max_points >= 2, "need at least two points");
    if series.len() <= max_points {
        return series.to_vec();
    }
    let stride = (series.len() - 1) as f64 / (max_points - 1) as f64;
    (0..max_points).map(|i| series[(i as f64 * stride).round() as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_equal_length_traces() {
        let mut agg = TraceAggregator::new();
        agg.add_trace(&[10.0, 8.0, 6.0]);
        agg.add_trace(&[20.0, 12.0, 8.0]);
        let s = agg.series();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].mean, 15.0);
        assert_eq!(s[1].mean, 10.0);
        assert_eq!(s[2].mean, 7.0);
        assert!(s.iter().all(|p| p.count == 2));
    }

    #[test]
    fn ragged_traces_tracked_by_count() {
        let mut agg = TraceAggregator::new();
        agg.add_trace(&[10.0, 8.0]);
        agg.add_trace(&[20.0]);
        let s = agg.series();
        assert_eq!(s[0], SeriesPoint { generation: 0, mean: 15.0, count: 2 });
        assert_eq!(s[1], SeriesPoint { generation: 1, mean: 8.0, count: 1 });
    }

    #[test]
    fn support_filter() {
        let mut agg = TraceAggregator::new();
        agg.add_trace(&[10.0, 8.0]);
        agg.add_trace(&[20.0]);
        let s = agg.series_with_support(2);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].generation, 0);
    }

    #[test]
    fn sparse_points() {
        let mut agg = TraceAggregator::new();
        agg.add_points(&[(5, 1.0), (7, 3.0), (5, 3.0)]);
        let s = agg.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], SeriesPoint { generation: 5, mean: 2.0, count: 2 });
        assert_eq!(s[1].generation, 7);
    }

    #[test]
    fn empty_behaviour() {
        let agg = TraceAggregator::new();
        assert!(agg.is_empty());
        assert!(agg.series().is_empty());
    }

    #[test]
    fn downsample_keeps_ends() {
        let series: Vec<SeriesPoint> =
            (0..100).map(|g| SeriesPoint { generation: g, mean: g as f64, count: 1 }).collect();
        let d = downsample(&series, 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0].generation, 0);
        assert_eq!(d[4].generation, 99);
    }

    #[test]
    fn downsample_short_series_passthrough() {
        let series: Vec<SeriesPoint> =
            (0..3).map(|g| SeriesPoint { generation: g, mean: 0.0, count: 1 }).collect();
        assert_eq!(downsample(&series, 10).len(), 3);
    }
}
