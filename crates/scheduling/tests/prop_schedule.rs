//! Property tests: the `S`+`CT` representation stays valid under arbitrary
//! sequences of incremental operations.

use etc_model::{Consistency, EtcGenerator, EtcInstance, GeneratorParams, Heterogeneity};
use proptest::prelude::*;
use scheduling::{check_schedule, Schedule};

fn small_instance(seed: u64) -> EtcInstance {
    EtcGenerator::new(GeneratorParams {
        n_tasks: 24,
        n_machines: 5,
        task_heterogeneity: Heterogeneity::High,
        machine_heterogeneity: Heterogeneity::Low,
        consistency: Consistency::Inconsistent,
        seed,
    })
    .generate()
}

/// One incremental operation against a schedule.
#[derive(Debug, Clone)]
enum Op {
    Move { task: usize, machine: usize },
    Swap { a: usize, b: usize },
}

fn op_strategy(n_tasks: usize, n_machines: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_tasks, 0..n_machines).prop_map(|(task, machine)| Op::Move { task, machine }),
        (0..n_tasks, 0..n_tasks).prop_map(|(a, b)| Op::Swap { a, b }),
    ]
}

proptest! {
    #[test]
    fn arbitrary_assignment_builds_valid_schedule(
        seed in 0u64..50,
        assignment in proptest::collection::vec(0u32..5, 24)
    ) {
        let inst = small_instance(seed);
        let s = Schedule::from_assignment(&inst, assignment);
        prop_assert!(check_schedule(&inst, &s).is_ok());
        prop_assert!(s.makespan() > 0.0);
    }

    #[test]
    fn op_sequences_preserve_invariant(
        seed in 0u64..20,
        ops in proptest::collection::vec(op_strategy(24, 5), 1..200)
    ) {
        let inst = small_instance(seed);
        let mut s = Schedule::round_robin(&inst);
        for op in ops {
            match op {
                Op::Move { task, machine } => { s.move_task(&inst, task, machine); }
                Op::Swap { a, b } => s.swap_tasks(&inst, a, b),
            }
        }
        prop_assert!(check_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn makespan_equals_max_of_recomputed_completions(
        seed in 0u64..20,
        assignment in proptest::collection::vec(0u32..5, 24)
    ) {
        let inst = small_instance(seed);
        let mut s = Schedule::from_assignment(&inst, assignment);
        let before = s.makespan();
        s.renormalize(&inst);
        prop_assert!((s.makespan() - before).abs() <= 1e-9 * before.abs().max(1.0));
    }

    #[test]
    fn machines_by_load_is_a_permutation_sorted_by_ct(
        seed in 0u64..20,
        assignment in proptest::collection::vec(0u32..5, 24)
    ) {
        let inst = small_instance(seed);
        let s = Schedule::from_assignment(&inst, assignment);
        let order = s.machines_by_load();
        let mut sorted = order.clone();
        sorted.sort();
        prop_assert_eq!(sorted, (0..5).collect::<Vec<_>>());
        for w in order.windows(2) {
            prop_assert!(s.completion(w[0]) <= s.completion(w[1]));
        }
    }

    #[test]
    fn move_then_move_back_restores_completion(
        seed in 0u64..20,
        task in 0usize..24,
        machine in 0usize..5
    ) {
        let inst = small_instance(seed);
        let mut s = Schedule::round_robin(&inst);
        let reference = s.clone();
        let old = s.move_task(&inst, task, machine);
        s.move_task(&inst, task, old);
        prop_assert_eq!(s.assignment(), reference.assignment());
        for m in 0..5 {
            prop_assert!((s.completion(m) - reference.completion(m)).abs() < 1e-9);
        }
    }
}
