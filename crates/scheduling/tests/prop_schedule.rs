//! Property tests: the `S`+`CT` representation stays valid under arbitrary
//! sequences of incremental operations.

use etc_model::{Consistency, EtcGenerator, EtcInstance, GeneratorParams, Heterogeneity};
use proptest::prelude::*;
use scheduling::{check_schedule, Schedule};

fn small_instance(seed: u64) -> EtcInstance {
    EtcGenerator::new(GeneratorParams {
        n_tasks: 24,
        n_machines: 5,
        task_heterogeneity: Heterogeneity::High,
        machine_heterogeneity: Heterogeneity::Low,
        consistency: Consistency::Inconsistent,
        seed,
    })
    .generate()
}

/// One incremental operation against a schedule.
#[derive(Debug, Clone)]
enum Op {
    Move {
        task: usize,
        machine: usize,
    },
    Swap {
        a: usize,
        b: usize,
    },
    Renormalize,
    /// Overwrite the schedule from a donor built on the same instance.
    CopyFrom {
        assignment: Vec<u32>,
    },
    /// Bulk-rewrite every gene (the crossover path).
    Rewrite {
        assignment: Vec<u32>,
    },
}

fn op_strategy(n_tasks: usize, n_machines: usize) -> impl Strategy<Value = Op> {
    let m = n_machines as u32;
    prop_oneof![
        4 => (0..n_tasks, 0..n_machines).prop_map(|(task, machine)| Op::Move { task, machine }),
        4 => (0..n_tasks, 0..n_tasks).prop_map(|(a, b)| Op::Swap { a, b }),
        1 => Just(Op::Renormalize),
        1 => proptest::collection::vec(0..m, n_tasks)
            .prop_map(|assignment| Op::CopyFrom { assignment }),
        1 => proptest::collection::vec(0..m, n_tasks)
            .prop_map(|assignment| Op::Rewrite { assignment }),
    ]
}

fn apply(inst: &EtcInstance, s: &mut Schedule, op: Op) {
    match op {
        Op::Move { task, machine } => {
            s.move_task(inst, task, machine);
        }
        Op::Swap { a, b } => s.swap_tasks(inst, a, b),
        Op::Renormalize => s.renormalize(inst),
        Op::CopyFrom { assignment } => {
            let donor = Schedule::from_assignment(inst, assignment);
            s.copy_from(&donor);
        }
        Op::Rewrite { assignment } => {
            s.rewrite_assignment(inst, |t| assignment[t]);
        }
    }
}

/// Reference model of the retired nested-bucket index (`Vec<Vec<u32>>`,
/// sorted buckets, incremental remove/insert): the CSR layout must
/// reproduce its semantics slice-for-slice after any operation sequence.
struct NestedBuckets {
    buckets: Vec<Vec<u32>>,
}

impl NestedBuckets {
    fn new(assignment: &[u32], n_machines: usize) -> Self {
        let mut buckets = vec![Vec::new(); n_machines];
        for (t, &m) in assignment.iter().enumerate() {
            buckets[m as usize].push(t as u32);
        }
        Self { buckets }
    }

    fn apply(&mut self, n_machines: usize, op: &Op) {
        match op {
            Op::Move { task, machine } => self.move_task(*task, *machine),
            Op::Swap { a, b } => {
                if a != b {
                    let ma = self.machine_of(*a);
                    let mb = self.machine_of(*b);
                    self.move_task(*a, mb);
                    self.move_task(*b, ma);
                }
            }
            Op::Renormalize => {}
            Op::CopyFrom { assignment } | Op::Rewrite { assignment } => {
                *self = Self::new(assignment, n_machines);
            }
        }
    }

    fn machine_of(&self, task: usize) -> usize {
        self.buckets
            .iter()
            .position(|b| b.contains(&(task as u32)))
            .expect("task present in exactly one bucket")
    }

    fn move_task(&mut self, task: usize, machine: usize) {
        let old = self.machine_of(task);
        if old == machine {
            return;
        }
        let p =
            self.buckets[old].iter().position(|&t| t as usize == task).expect("task in its bucket");
        self.buckets[old].remove(p);
        let q = self.buckets[machine].partition_point(|&t| (t as usize) < task);
        self.buckets[machine].insert(q, task as u32);
    }
}

proptest! {
    #[test]
    fn csr_index_matches_nested_bucket_model(
        seed in 0u64..20,
        ops in proptest::collection::vec(op_strategy(24, 5), 1..150)
    ) {
        // The flat CSR index and the nested-bucket reference must expose
        // identical per-machine task slices after every operation.
        let inst = small_instance(seed);
        let mut s = Schedule::round_robin(&inst);
        let mut model = NestedBuckets::new(s.assignment(), inst.n_machines());
        for op in ops {
            model.apply(inst.n_machines(), &op);
            apply(&inst, &mut s, op);
            for m in 0..inst.n_machines() {
                prop_assert_eq!(s.tasks_on(m), &model.buckets[m][..], "machine {}", m);
                prop_assert_eq!(s.count_on(m), model.buckets[m].len());
            }
            prop_assert!(s.validate_index().is_ok(), "{:?}", s.validate_index());
        }
    }

    #[test]
    fn arbitrary_assignment_builds_valid_schedule(
        seed in 0u64..50,
        assignment in proptest::collection::vec(0u32..5, 24)
    ) {
        let inst = small_instance(seed);
        let s = Schedule::from_assignment(&inst, assignment);
        prop_assert!(check_schedule(&inst, &s).is_ok());
        prop_assert!(s.makespan() > 0.0);
    }

    #[test]
    fn op_sequences_preserve_invariant(
        seed in 0u64..20,
        ops in proptest::collection::vec(op_strategy(24, 5), 1..200)
    ) {
        let inst = small_instance(seed);
        let mut s = Schedule::round_robin(&inst);
        for op in ops {
            apply(&inst, &mut s, op);
        }
        prop_assert!(check_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn task_index_matches_recount_after_op_sequences(
        seed in 0u64..20,
        ops in proptest::collection::vec(op_strategy(24, 5), 1..200)
    ) {
        // The incrementally maintained index must agree with a
        // from-scratch recount of the assignment after ANY sequence of
        // mutators, and its buckets must stay sorted (canonical form).
        let inst = small_instance(seed);
        let mut s = Schedule::round_robin(&inst);
        for op in ops {
            apply(&inst, &mut s, op);
            prop_assert!(s.validate_index().is_ok(), "{:?}", s.validate_index());
            for m in 0..inst.n_machines() {
                let recount: Vec<u32> = s
                    .assignment()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &mac)| mac as usize == m)
                    .map(|(t, _)| t as u32)
                    .collect();
                prop_assert_eq!(s.tasks_on(m), &recount[..], "machine {}", m);
                prop_assert_eq!(s.count_on(m), recount.len());
            }
        }
    }

    #[test]
    fn makespan_equals_max_of_recomputed_completions(
        seed in 0u64..20,
        assignment in proptest::collection::vec(0u32..5, 24)
    ) {
        let inst = small_instance(seed);
        let mut s = Schedule::from_assignment(&inst, assignment);
        let before = s.makespan();
        s.renormalize(&inst);
        prop_assert!((s.makespan() - before).abs() <= 1e-9 * before.abs().max(1.0));
    }

    #[test]
    fn machines_by_load_is_a_permutation_sorted_by_ct(
        seed in 0u64..20,
        assignment in proptest::collection::vec(0u32..5, 24)
    ) {
        let inst = small_instance(seed);
        let s = Schedule::from_assignment(&inst, assignment);
        let order = s.machines_by_load();
        let mut sorted = order.clone();
        sorted.sort();
        prop_assert_eq!(sorted, (0..5).collect::<Vec<_>>());
        for w in order.windows(2) {
            prop_assert!(s.completion(w[0]) <= s.completion(w[1]));
        }
    }

    #[test]
    fn move_then_move_back_restores_completion(
        seed in 0u64..20,
        task in 0usize..24,
        machine in 0usize..5
    ) {
        let inst = small_instance(seed);
        let mut s = Schedule::round_robin(&inst);
        let reference = s.clone();
        let old = s.move_task(&inst, task, machine);
        s.move_task(&inst, task, old);
        prop_assert_eq!(s.assignment(), reference.assignment());
        for m in 0..5 {
            prop_assert!((s.completion(m) - reference.completion(m)).abs() < 1e-9);
        }
    }
}
