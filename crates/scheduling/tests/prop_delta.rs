//! Differential suite for the delta evaluation core (DESIGN.md §9):
//! after **every** incremental operation, the schedule's cached
//! completion times and its O(1) tracked-argmax makespan must be
//! **bit-identical** to a from-scratch recompute — across random grid
//! shapes and all 12 Braun consistency×heterogeneity classes, and for
//! the batched slab evaluator against per-offspring oracle builds.
#![recursion_limit = "512"]

use etc_model::{
    braun_instance_names, Consistency, EtcGenerator, EtcInstance, GeneratorParams, Heterogeneity,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scheduling::{check_schedule, OffspringBatch, Schedule};

fn gen_instance(
    n_tasks: usize,
    n_machines: usize,
    seed: u64,
    consistency: Consistency,
) -> EtcInstance {
    EtcGenerator::new(GeneratorParams {
        n_tasks,
        n_machines,
        task_heterogeneity: Heterogeneity::High,
        machine_heterogeneity: Heterogeneity::High,
        consistency,
        seed,
    })
    .generate()
}

/// The oracle: a fresh build from the assignment alone, sharing no cached
/// state, with the original O(M) makespan fold.
fn assert_matches_oracle(inst: &EtcInstance, s: &Schedule, ctx: &str) {
    let oracle = Schedule::from_assignment(inst, s.assignment().to_vec());
    for m in 0..inst.n_machines() {
        assert_eq!(
            s.completion(m).to_bits(),
            oracle.completion(m).to_bits(),
            "{ctx}: CT[{m}] diverged from the from-scratch recompute"
        );
    }
    assert_eq!(
        s.makespan().to_bits(),
        oracle.makespan_full().to_bits(),
        "{ctx}: tracked-argmax makespan diverged from the oracle fold"
    );
    assert_eq!(
        s.makespan().to_bits(),
        s.makespan_full().to_bits(),
        "{ctx}: makespan() and makespan_full() disagree on the same schedule"
    );
}

/// One incremental operation.
#[derive(Debug, Clone)]
enum Op {
    Move { task: usize, machine: usize },
    Swap { a: usize, b: usize },
    Rewrite { assignment: Vec<u32> },
    Renormalize,
}

fn op_strategy(n_tasks: usize, n_machines: usize) -> impl Strategy<Value = Op> {
    let m = n_machines as u32;
    prop_oneof![
        5 => (0..n_tasks, 0..n_machines).prop_map(|(task, machine)| Op::Move { task, machine }),
        4 => (0..n_tasks, 0..n_tasks).prop_map(|(a, b)| Op::Swap { a, b }),
        1 => proptest::collection::vec(0..m, n_tasks)
            .prop_map(|assignment| Op::Rewrite { assignment }),
        1 => Just(Op::Renormalize),
    ]
}

fn consistency_strategy() -> impl Strategy<Value = Consistency> {
    prop_oneof![
        Just(Consistency::Consistent),
        Just(Consistency::SemiConsistent),
        Just(Consistency::Inconsistent),
    ]
}

/// Op indices are generated at the maximum shape bounds and folded into
/// the actual (randomly drawn) shape with a modulo, keeping the strategy
/// types flat for the proptest macro.
const MAX_TASKS: usize = 48;
const MAX_MACHINES: usize = 9;

proptest! {
    /// Random grid shapes: every operator leaves CT and makespan
    /// bit-identical to the oracle.
    #[test]
    fn delta_state_matches_oracle_after_every_op(
        n_tasks in 1usize..MAX_TASKS,
        n_machines in 1usize..MAX_MACHINES,
        inst_seed in 0u64..50,
        consistency in consistency_strategy(),
        rng_seed in 0u64..1000,
        ops in proptest::collection::vec(op_strategy(MAX_TASKS, MAX_MACHINES), 1..60),
    ) {
        let inst = gen_instance(n_tasks, n_machines, inst_seed, consistency);
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mut s = Schedule::random(&inst, &mut rng);
        assert_matches_oracle(&inst, &s, "after random init");
        for (k, op) in ops.into_iter().enumerate() {
            match op {
                Op::Move { task, machine } => {
                    s.move_task(&inst, task % n_tasks, machine % n_machines);
                }
                Op::Swap { a, b } => s.swap_tasks(&inst, a % n_tasks, b % n_tasks),
                Op::Rewrite { assignment } => {
                    s.rewrite_assignment(&inst, |t| assignment[t % MAX_TASKS] % n_machines as u32)
                }
                Op::Renormalize => s.renormalize(&inst),
            }
            assert_matches_oracle(&inst, &s, &format!("step {k}"));
            prop_assert!(check_schedule(&inst, &s).is_ok());
        }
    }

    /// The slab evaluator is bitwise the oracle for arbitrary gene rows.
    #[test]
    fn batch_slab_matches_oracle(
        n_tasks in 1usize..48,
        n_machines in 1usize..9,
        inst_seed in 0u64..50,
        consistency in consistency_strategy(),
        rows in proptest::collection::vec(0u64..u64::MAX, 1..16),
    ) {
        let inst = gen_instance(n_tasks, n_machines, inst_seed, consistency);
        let mut batch = OffspringBatch::new(&inst, rows.len());
        let mut genes_per_row = Vec::new();
        for seed in &rows {
            let mut rng = SmallRng::seed_from_u64(*seed);
            let genes: Vec<u32> =
                (0..n_tasks).map(|_| rng.gen_range(0..n_machines as u32)).collect();
            let r = batch.push_stale();
            batch.genes_mut(r).copy_from_slice(&genes);
            genes_per_row.push(genes);
        }
        batch.evaluate(&inst);
        for (r, genes) in genes_per_row.iter().enumerate() {
            let oracle = Schedule::from_assignment(&inst, genes.clone());
            prop_assert_eq!(batch.fitness(r).to_bits(), oracle.makespan_full().to_bits());
            for m in 0..n_machines {
                prop_assert_eq!(
                    batch.completion_row(r)[m].to_bits(),
                    oracle.completion(m).to_bits()
                );
            }
            prop_assert_eq!(
                batch.fitness(r).to_bits(),
                batch.oracle_fitness(&inst, r).to_bits()
            );
        }
    }
}

/// All 12 Braun consistency×heterogeneity classes at full 512×16 scale:
/// long random operator chains stay bit-identical to the oracle, checked
/// at every step.
#[test]
fn braun_classes_delta_matches_oracle() {
    let names = braun_instance_names();
    assert_eq!(names.len(), 12, "the Braun registry has 12 classes");
    for (c, name) in names.iter().enumerate() {
        let inst = etc_model::braun_instance(name);
        let (nt, nm) = (inst.n_tasks(), inst.n_machines());
        let mut rng = SmallRng::seed_from_u64(c as u64);
        let mut s = Schedule::random(&inst, &mut rng);
        for step in 0..150 {
            match step % 3 {
                0 => {
                    let t = rng.gen_range(0..nt);
                    let m = rng.gen_range(0..nm);
                    s.move_task(&inst, t, m);
                }
                1 => {
                    let a = rng.gen_range(0..nt);
                    let b = rng.gen_range(0..nt);
                    s.swap_tasks(&inst, a, b);
                }
                _ => {
                    // H2LL-shaped move: off the most loaded machine.
                    let loaded = s.most_loaded_machine();
                    if let Some(t) = s.random_task_on(loaded, &mut rng) {
                        let m = rng.gen_range(0..nm);
                        s.move_task(&inst, t, m);
                    }
                }
            }
            assert_matches_oracle(&inst, &s, &format!("{name} step {step}"));
        }
    }
}

/// Braun-scale slab batches are bitwise the oracle too.
#[test]
fn braun_classes_batch_slab_matches_oracle() {
    for (c, name) in braun_instance_names().iter().enumerate() {
        let inst = etc_model::braun_instance(name);
        let mut rng = SmallRng::seed_from_u64(100 + c as u64);
        let mut batch = OffspringBatch::new(&inst, 16);
        let mut rows = Vec::new();
        for _ in 0..16 {
            let genes: Vec<u32> =
                (0..inst.n_tasks()).map(|_| rng.gen_range(0..inst.n_machines() as u32)).collect();
            let r = batch.push_stale();
            batch.genes_mut(r).copy_from_slice(&genes);
            rows.push(genes);
        }
        batch.evaluate(&inst);
        for (r, genes) in rows.iter().enumerate() {
            let oracle = Schedule::from_assignment(&inst, genes.clone());
            assert_eq!(
                batch.fitness(r).to_bits(),
                oracle.makespan_full().to_bits(),
                "{name} row {r}"
            );
            for m in 0..inst.n_machines() {
                assert_eq!(
                    batch.completion_row(r)[m].to_bits(),
                    oracle.completion(m).to_bits(),
                    "{name} row {r} CT[{m}]"
                );
            }
        }
    }
}

/// The renormalize_every drift pin (ISSUE 6 satellite): run far longer
/// without renormalization than any configured cadence, then show the
/// renormalize pass changes **nothing** — the canonical-CT invariant
/// means accumulated drift is exactly zero ULP, not merely bounded.
#[test]
fn long_unrenormalized_runs_have_zero_ulp_drift() {
    let inst = etc_model::braun_instance("u_i_hihi.0");
    let (nt, nm) = (inst.n_tasks(), inst.n_machines());
    let mut rng = SmallRng::seed_from_u64(42);
    let mut s = Schedule::random(&inst, &mut rng);
    // 20k incremental updates with no renormalization — the historical
    // ±etc delta path would have drifted by many ULPs by now.
    for _ in 0..20_000 {
        if rng.gen_bool(0.5) {
            let t = rng.gen_range(0..nt);
            let m = rng.gen_range(0..nm);
            s.move_task(&inst, t, m);
        } else {
            let a = rng.gen_range(0..nt);
            let b = rng.gen_range(0..nt);
            s.swap_tasks(&inst, a, b);
        }
    }
    let mut renorm = s.clone();
    renorm.renormalize(&inst);
    for m in 0..nm {
        let drift_ulps =
            (s.completion(m).to_bits() as i64 - renorm.completion(m).to_bits() as i64).abs();
        assert_eq!(drift_ulps, 0, "CT[{m}] drifted {drift_ulps} ULPs after 20k updates");
    }
    assert_eq!(s.makespan().to_bits(), renorm.makespan().to_bits());
}
