//! The `S` + `CT` solution representation with incremental updates.

use etc_model::EtcInstance;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A complete assignment of every task to one machine, with cached
/// per-machine completion times and a per-machine **task index**.
///
/// All mutators take the [`EtcInstance`] as an argument (the schedule does
/// not own it), update `CT` incrementally, and keep the representation
/// valid. Makespan evaluation is O(1) from a maintained argmax.
///
/// **Canonical-CT invariant (DESIGN.md §9):** every cached completion time
/// is *bit-identical* to the from-scratch recomputation
/// `ready[m] + Σ ETC[t][m]` taken over `m`'s tasks in ascending task
/// order. [`Schedule::move_task`] guarantees this by re-deriving the two
/// touched machines from their sorted bucket slices (O(tasks on the two
/// machines), the "O(changed machines)" delta path) instead of applying a
/// `±etc` float pair that would drift from the canonical sum. Because
/// every constructor and mutator accumulates in the same ascending-task
/// order, *any* two routes to the same assignment produce bit-identical
/// `CT` vectors — the property the differential suite (`prop_delta.rs`)
/// pins against [`Schedule::renormalize`]-style full recomputes.
///
/// The task index mirrors the assignment in **CSR form** (DESIGN.md §7):
/// one flat `bucket_tasks` array holding every task grouped by machine
/// (ascending task order within each machine's slice), a per-machine
/// offset array `bucket_start` bounding each slice, and a backmap
/// `pos[t]` giving `t`'s offset inside its machine's slice. It makes
/// [`Schedule::count_on`] O(1), [`Schedule::tasks_on`] an allocation-free
/// slice borrow, and [`Schedule::random_task_on`] an O(1) pick — the
/// operator hot paths that previously re-scanned the whole assignment.
///
/// The flat layout means a `Schedule` is five flat buffers and nothing
/// else: [`Schedule::copy_from`] — which runs three times per cell
/// evolution in the engines, twice under a read lock — is five
/// `copy_from_slice` calls with zero nested allocation or pointer
/// chasing, and index rebuilds are an allocation-free counting
/// sort. Keeping slices sorted costs one contiguous `memmove`
/// over the gap between the two touched machines per move, and buys a
/// canonical layout: two schedules with equal assignments have
/// bit-identical indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// `assignment[t] = m`: task `t` runs on machine `m`.
    assignment: Vec<u32>,
    /// `completion[m]`: ready time of `m` plus the ETC of every task
    /// assigned to it.
    completion: Vec<f64>,
    /// CSR payload: all tasks grouped by machine, ascending within each
    /// machine's slice. Always exactly `n_tasks` long.
    bucket_tasks: Vec<u32>,
    /// CSR offsets: machine `m`'s tasks occupy
    /// `bucket_tasks[bucket_start[m]..bucket_start[m + 1]]`.
    /// `n_machines + 1` entries; first is 0, last is `n_tasks`.
    bucket_start: Vec<u32>,
    /// `pos[t]`: offset of task `t` within its machine's slice.
    pos: Vec<u32>,
    /// Per-machine write cursors for the counting-sort rebuild — pure
    /// scratch, excluded from `PartialEq` and serialization (its
    /// leftover contents depend on rebuild history, not the schedule's
    /// value).
    #[serde(skip)]
    cursors: Vec<u32>,
    /// Index of a machine whose completion time equals the makespan —
    /// maintained by every mutator so [`Schedule::makespan`] is O(1).
    /// Excluded from `PartialEq` (two equal schedules may cache different
    /// argmax indices when completion times tie; the *value*
    /// `completion[max_machine]` is identical either way).
    #[serde(skip)]
    max_machine: u32,
    /// Set by [`Schedule::load_evaluated_deferred`]: the CSR index does
    /// not match `assignment` yet. Index readers debug-assert this is
    /// false; [`Schedule::ensure_index`] clears it. Deferred schedules
    /// exist only inside the engines' population cells mid-run (the
    /// replacement hot path skips the counting sort for offspring whose
    /// index nothing will read); every public exit point re-indexes.
    #[serde(skip)]
    index_stale: bool,
}

/// Value equality: the five semantic buffers. `cursors` is rebuild
/// scratch and deliberately ignored — two schedules reaching the same
/// assignment through different histories must compare equal.
impl PartialEq for Schedule {
    fn eq(&self, other: &Self) -> bool {
        self.assignment == other.assignment
            && self.completion == other.completion
            && self.bucket_tasks == other.bucket_tasks
            && self.bucket_start == other.bucket_start
            && self.pos == other.pos
    }
}

impl Schedule {
    /// Builds a schedule from an explicit assignment, computing `CT` from
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the instance's task
    /// count or any machine index is out of range.
    pub fn from_assignment(instance: &EtcInstance, assignment: Vec<u32>) -> Self {
        assert_eq!(assignment.len(), instance.n_tasks(), "one machine per task");
        let n_machines = instance.n_machines();
        let mut completion: Vec<f64> = instance.ready_times().to_vec();
        for (t, &m) in assignment.iter().enumerate() {
            let m = m as usize;
            assert!(m < n_machines, "task {t} assigned to machine {m} of {n_machines}");
            completion[m] += instance.etc().etc_on(m, t);
        }
        let mut s = Self {
            assignment,
            completion,
            bucket_tasks: Vec::new(),
            bucket_start: Vec::new(),
            pos: Vec::new(),
            cursors: Vec::new(),
            max_machine: 0,
            index_stale: false,
        };
        s.rebuild_index();
        s.rescan_max();
        s
    }

    /// Rebuilds the task index from the assignment: an allocation-free
    /// counting sort in O(T + M). Placing tasks in ascending order leaves
    /// every machine's slice sorted.
    fn rebuild_index(&mut self) {
        let n_machines = self.completion.len();
        self.bucket_start.resize(n_machines + 1, 0);
        self.bucket_start.fill(0);
        for &m in &self.assignment {
            self.bucket_start[m as usize] += 1;
        }
        self.place_counted();
        self.index_stale = false;
    }

    /// Rebuilds the CSR index if a [`Schedule::load_evaluated_deferred`]
    /// left it stale; a no-op otherwise. Engines call this on every
    /// individual before a population leaves the run.
    pub fn ensure_index(&mut self) {
        if self.index_stale {
            self.rebuild_index();
        }
    }

    /// The counting sort's prefix-sum + placement half: expects
    /// `bucket_start[m]` to hold machine `m`'s task *count* (the callers'
    /// fused first pass computes it), leaves the full CSR index built.
    fn place_counted(&mut self) {
        let n_tasks = self.assignment.len();
        let n_machines = self.completion.len();
        self.bucket_tasks.resize(n_tasks, 0);
        self.pos.resize(n_tasks, 0);
        self.cursors.resize(n_machines, 0);
        // Counts -> exclusive starts, with a cursor copy so local offsets
        // fall out of the placement pass itself (pos = cursor - start).
        let mut start = 0u32;
        for m in 0..n_machines {
            let count = self.bucket_start[m];
            self.bucket_start[m] = start;
            self.cursors[m] = start;
            start += count;
        }
        self.bucket_start[n_machines] = start;
        for t in 0..n_tasks {
            let m = self.assignment[t] as usize;
            let slot = self.cursors[m];
            self.bucket_tasks[slot as usize] = t as u32;
            self.pos[t] = slot - self.bucket_start[m];
            self.cursors[m] = slot + 1;
        }
    }

    /// Relocates `task` from `old`'s slice to its sorted position inside
    /// `new`'s slice. The tasks *between* the two slices shift by one slot
    /// wholesale (a single contiguous `copy_within`) but keep their local
    /// offsets — only their machines' start offsets move — so back-pointer
    /// fix-ups touch just the two affected slices, fused into the same
    /// pass as their shifts.
    fn index_move(&mut self, task: usize, old: usize, new: usize) {
        debug_assert_ne!(old, new);
        debug_assert!(!self.index_stale, "incremental move on a deferred-load schedule");
        let gp = self.bucket_start[old] as usize + self.pos[task] as usize;
        debug_assert_eq!(self.bucket_tasks[gp] as usize, task);
        let s_new = self.bucket_start[new] as usize;
        let e_new = self.bucket_start[new + 1] as usize;
        let lp = self.bucket_tasks[s_new..e_new].partition_point(|&t| (t as usize) < task);
        if old < new {
            // Old slice's tail shifts left one slot; fix its back-pointers
            // in the same pass.
            let e_old = self.bucket_start[old + 1] as usize;
            for i in gp..e_old - 1 {
                let t = self.bucket_tasks[i + 1];
                self.bucket_tasks[i] = t;
                self.pos[t as usize] -= 1;
            }
            // Slices strictly between (plus `new`'s prefix) shift left
            // wholesale; local offsets unchanged.
            let gi = s_new + lp - 1;
            self.bucket_tasks.copy_within(e_old..gi + 1, e_old - 1);
            // `new`'s tail stays put but gains a predecessor.
            for i in gi + 1..e_new {
                self.pos[self.bucket_tasks[i] as usize] += 1;
            }
            self.bucket_tasks[gi] = task as u32;
            for m in old + 1..=new {
                self.bucket_start[m] -= 1;
            }
        } else {
            // Mirror image: everything between shifts right one slot.
            let e_old = self.bucket_start[old + 1] as usize;
            for i in gp + 1..e_old {
                self.pos[self.bucket_tasks[i] as usize] -= 1;
            }
            self.bucket_tasks.copy_within(e_new..gp, e_new + 1);
            let gi = s_new + lp;
            for i in (gi..e_new).rev() {
                let t = self.bucket_tasks[i];
                self.bucket_tasks[i + 1] = t;
                self.pos[t as usize] += 1;
            }
            self.bucket_tasks[gi] = task as u32;
            for m in new + 1..=old {
                self.bucket_start[m] += 1;
            }
        }
        self.pos[task] = lp as u32;
    }

    /// A uniformly random schedule.
    pub fn random(instance: &EtcInstance, rng: &mut impl Rng) -> Self {
        let n_machines = instance.n_machines() as u32;
        let assignment = (0..instance.n_tasks()).map(|_| rng.gen_range(0..n_machines)).collect();
        Self::from_assignment(instance, assignment)
    }

    /// A round-robin schedule (task `t` on machine `t mod M`) — a cheap
    /// deterministic starting point used in tests and examples.
    pub fn round_robin(instance: &EtcInstance) -> Self {
        let m = instance.n_machines() as u32;
        let assignment = (0..instance.n_tasks() as u32).map(|t| t % m).collect();
        Self::from_assignment(instance, assignment)
    }

    /// Number of tasks.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.assignment.len()
    }

    /// Number of machines.
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.completion.len()
    }

    /// Machine assigned to `task`.
    #[inline]
    pub fn machine_of(&self, task: usize) -> usize {
        self.assignment[task] as usize
    }

    /// The raw assignment vector (`S` in the paper).
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The cached completion time of `machine` (`CT[m]`), its *load*.
    #[inline]
    pub fn completion(&self, machine: usize) -> f64 {
        self.completion[machine]
    }

    /// All cached completion times.
    #[inline]
    pub fn completion_times(&self) -> &[f64] {
        &self.completion
    }

    /// The paper's `evaluate()`: the maximum completion time. O(1) from
    /// the maintained argmax (the delta-fitness path); the O(M) fold it
    /// replaced survives as [`Schedule::makespan_full`], the oracle the
    /// differential suite compares against.
    #[inline]
    pub fn makespan(&self) -> f64 {
        self.completion[self.max_machine as usize]
    }

    /// The original O(M) makespan fold over every cached completion time —
    /// kept as the oracle path for the differential tests pinning the
    /// tracked-argmax [`Schedule::makespan`] bit-identically.
    pub fn makespan_full(&self) -> f64 {
        self.completion.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Re-derives `max_machine` by full scan (ties to the lowest index).
    fn rescan_max(&mut self) {
        self.max_machine = self.most_loaded_machine() as u32;
    }

    /// Re-establishes `max_machine` after exactly machines `a` and `b` had
    /// their completion times rewritten. O(1) compare-and-replace unless
    /// the defining machine itself changed (its load may have *dropped*,
    /// dethroning it), which needs the O(M) rescan.
    fn refresh_max(&mut self, a: usize, b: usize) {
        let mm = self.max_machine as usize;
        if mm == a || mm == b {
            self.rescan_max();
        } else {
            if self.completion[a] > self.completion[mm] {
                self.max_machine = a as u32;
            }
            if self.completion[b] > self.completion[self.max_machine as usize] {
                self.max_machine = b as u32;
            }
        }
    }

    /// Index of the most loaded machine (ties break to the lowest index);
    /// its completion time *defines* the makespan.
    pub fn most_loaded_machine(&self) -> usize {
        let mut best = 0;
        for m in 1..self.completion.len() {
            if self.completion[m] > self.completion[best] {
                best = m;
            }
        }
        best
    }

    /// Index of the least loaded machine (ties break to the lowest index).
    pub fn least_loaded_machine(&self) -> usize {
        let mut best = 0;
        for m in 1..self.completion.len() {
            if self.completion[m] < self.completion[best] {
                best = m;
            }
        }
        best
    }

    /// Machine indices sorted by ascending completion time (the sort in
    /// H2LL's Algorithm 4 line 2). Allocates; hot callers should reuse
    /// [`Schedule::sort_machines_into`].
    pub fn machines_by_load(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.completion.len()).collect();
        self.sort_machines_into(&mut order);
        order
    }

    /// The sort key ordering machines by load: ascending completion time,
    /// ties broken by machine index. [`Schedule::sort_machines_into`] and
    /// every incremental re-sorter (H2LL's resift) MUST share this key so
    /// maintained orders stay bit-identical to a full re-sort.
    #[inline]
    pub fn load_rank(&self, machine: usize) -> (f64, usize) {
        (self.completion[machine], machine)
    }

    /// Sorts the provided index buffer by ascending completion time without
    /// allocating. `order` must contain each machine index exactly once.
    pub fn sort_machines_into(&self, order: &mut [usize]) {
        debug_assert_eq!(order.len(), self.completion.len());
        order.sort_by(|&a, &b| {
            self.load_rank(a).partial_cmp(&self.load_rank(b)).expect("completion times are finite")
        });
    }

    /// Moves `task` to `new_machine`, updating both touched completion
    /// times incrementally (the paper's delta update, here
    /// O(tasks on the two machines) rather than a `±etc` float pair — see
    /// the canonical-CT invariant in the struct docs). Returns the
    /// previous machine. A move to the same machine is a no-op.
    pub fn move_task(&mut self, instance: &EtcInstance, task: usize, new_machine: usize) -> usize {
        let old = self.assignment[task] as usize;
        if old == new_machine {
            return old;
        }
        self.assignment[task] = new_machine as u32;
        self.index_move(task, old, new_machine);
        self.recompute_machine(instance, old);
        self.recompute_machine(instance, new_machine);
        self.refresh_max(old, new_machine);
        old
    }

    /// Re-derives one machine's completion time from its sorted bucket
    /// slice — the same ascending-task-order accumulation every bulk
    /// constructor uses, so the result is bit-identical to a from-scratch
    /// recompute by construction.
    #[inline]
    fn recompute_machine(&mut self, instance: &EtcInstance, machine: usize) {
        let row = instance.etc().machine_row(machine);
        let (s, e) = (self.bucket_start[machine] as usize, self.bucket_start[machine + 1] as usize);
        let mut ct = instance.ready_times()[machine];
        for &t in &self.bucket_tasks[s..e] {
            ct += row[t as usize];
        }
        self.completion[machine] = ct;
    }

    /// Overwrites the whole assignment (`assignment[t] = f(t)`), then
    /// recomputes `CT` and the task index from scratch in O(T + M) — the
    /// bulk path for operators that rewrite many genes at once (crossover),
    /// where per-gene incremental index maintenance would cost more than a
    /// single rebuild.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `f` returns an out-of-range machine.
    pub fn rewrite_assignment(&mut self, instance: &EtcInstance, mut f: impl FnMut(usize) -> u32) {
        let n_machines = self.completion.len();
        let etc = instance.etc();
        // One fused pass: write the gene, accumulate its ETC into the
        // fresh CT vector, and count it for the index's counting sort.
        self.completion.copy_from_slice(instance.ready_times());
        self.bucket_start.resize(n_machines + 1, 0);
        self.bucket_start.fill(0);
        for t in 0..self.assignment.len() {
            let m = f(t);
            debug_assert!((m as usize) < n_machines, "task {t} assigned to machine {m}");
            self.assignment[t] = m;
            let m = m as usize;
            self.completion[m] += etc.etc_on(m, t);
            self.bucket_start[m] += 1;
        }
        self.place_counted();
        self.rescan_max();
    }

    /// Machine-removal repair: moves **every** task off `machine`, one
    /// [`Schedule::move_task`] per task, so the canonical-CT invariant and
    /// the tracked makespan argmax hold after each step exactly as they
    /// would for any other sequence of moves. `choose(task, schedule)`
    /// picks the destination for each evacuated task and sees the
    /// schedule *as repaired so far* (earlier evacuations already
    /// landed), which lets greedy policies account for the load they are
    /// adding. Returns the number of tasks moved.
    ///
    /// # Panics
    ///
    /// Panics if `choose` returns `machine` itself (the evacuation would
    /// never terminate) or an out-of-range machine.
    pub fn evacuate_machine(
        &mut self,
        instance: &EtcInstance,
        machine: usize,
        mut choose: impl FnMut(usize, &Schedule) -> usize,
    ) -> usize {
        let mut moved = 0;
        while let Some(&t) = self.tasks_on(machine).first() {
            let task = t as usize;
            let target = choose(task, self);
            assert!(target != machine, "task {task} evacuated onto the evacuated machine");
            assert!(target < self.completion.len(), "task {task} evacuated to machine {target}");
            self.move_task(instance, task, target);
            moved += 1;
        }
        moved
    }

    /// Swaps the machines of two tasks, incrementally.
    pub fn swap_tasks(&mut self, instance: &EtcInstance, a: usize, b: usize) {
        if a == b {
            return;
        }
        let ma = self.assignment[a] as usize;
        let mb = self.assignment[b] as usize;
        self.move_task(instance, a, mb);
        self.move_task(instance, b, ma);
    }

    /// Tasks currently assigned to `machine`, in ascending task order —
    /// an O(1) slice borrow from the CSR index (no allocation, no scan).
    #[inline]
    pub fn tasks_on(&self, machine: usize) -> &[u32] {
        debug_assert!(!self.index_stale, "index read on a deferred-load schedule");
        &self.bucket_tasks
            [self.bucket_start[machine] as usize..self.bucket_start[machine + 1] as usize]
    }

    /// Number of tasks on `machine` (O(1), from the task index).
    #[inline]
    pub fn count_on(&self, machine: usize) -> usize {
        debug_assert!(!self.index_stale, "index read on a deferred-load schedule");
        (self.bucket_start[machine + 1] - self.bucket_start[machine]) as usize
    }

    /// A uniformly random task among those on `machine`, or `None` if the
    /// machine holds no tasks. O(1) via the task index. Consumes exactly
    /// one `gen_range(0..count)` draw, matching the retired scan-based
    /// `nth`-filter pick (slices are sorted, so the `k`-th slice entry
    /// *is* the `k`-th assigned task in ascending order).
    #[inline]
    pub fn random_task_on(&self, machine: usize, rng: &mut impl Rng) -> Option<usize> {
        let bucket = self.tasks_on(machine);
        if bucket.is_empty() {
            return None;
        }
        Some(bucket[rng.gen_range(0..bucket.len())] as usize)
    }

    /// Validates the task index against the assignment: offsets monotone
    /// and spanning exactly `0..n_tasks`, every machine's slice sorted,
    /// back-pointers exact, and slice membership agreeing with the
    /// assignment. O(T + M); used by the invariant checker.
    pub fn validate_index(&self) -> Result<(), String> {
        let n_tasks = self.assignment.len();
        let n_machines = self.completion.len();
        if self.bucket_start.len() != n_machines + 1 {
            return Err(format!(
                "offset array has {} entries, want {}",
                self.bucket_start.len(),
                n_machines + 1
            ));
        }
        if self.bucket_tasks.len() != n_tasks || self.pos.len() != n_tasks {
            return Err(format!(
                "index holds {} tasks / {} back-pointers, assignment has {n_tasks}",
                self.bucket_tasks.len(),
                self.pos.len()
            ));
        }
        if self.bucket_start[0] != 0 || self.bucket_start[n_machines] as usize != n_tasks {
            return Err(format!(
                "offsets span {}..{}, want 0..{n_tasks}",
                self.bucket_start[0], self.bucket_start[n_machines]
            ));
        }
        for m in 0..n_machines {
            let (s, e) = (self.bucket_start[m] as usize, self.bucket_start[m + 1] as usize);
            if s > e || e > n_tasks {
                // Checked before slicing so a corrupt offset array is
                // reported as Err, not an out-of-bounds panic.
                return Err(format!("offsets corrupt at machine {m}: {s}..{e} of {n_tasks}"));
            }
            for (p, &t) in self.bucket_tasks[s..e].iter().enumerate() {
                let t = t as usize;
                if t >= n_tasks {
                    return Err(format!("bucket[{m}][{p}] holds unknown task {t}"));
                }
                if self.assignment[t] as usize != m {
                    return Err(format!(
                        "bucket[{m}][{p}] holds task {t}, but assignment says machine {}",
                        self.assignment[t]
                    ));
                }
                if self.pos[t] as usize != p {
                    return Err(format!(
                        "pos[{t}] = {} but task sits at bucket[{m}][{p}]",
                        self.pos[t]
                    ));
                }
                if p > 0 && self.bucket_tasks[s + p - 1] >= t as u32 {
                    return Err(format!("bucket[{m}] not strictly ascending at offset {p}"));
                }
            }
        }
        Ok(())
    }

    /// Recomputes `CT` from scratch. Historically this discarded
    /// accumulated floating-point drift from `±etc` incremental updates;
    /// under the canonical-CT invariant it is a provable no-op on the
    /// cached values (the drift test pins that to the ULP) and survives
    /// as the oracle path for the differential suite.
    pub fn renormalize(&mut self, instance: &EtcInstance) {
        let etc = instance.etc();
        self.completion.copy_from_slice(instance.ready_times());
        for (t, &m) in self.assignment.iter().enumerate() {
            let m = m as usize;
            self.completion[m] += etc.etc_on(m, t);
        }
        self.rescan_max();
    }

    /// Loads an externally evaluated solution — a gene row plus the
    /// per-machine completion times a batch evaluation pass
    /// ([`crate::OffspringBatch`]) already computed — rebuilding the task
    /// index and argmax without re-touching the ETC matrix. The caller
    /// guarantees `completion` is the canonical ascending-task-order
    /// accumulation for `assignment`; debug builds verify that bitwise.
    pub fn load_evaluated(
        &mut self,
        instance: &EtcInstance,
        assignment: &[u32],
        completion: &[f64],
    ) {
        assert_eq!(assignment.len(), self.assignment.len(), "task count mismatch");
        assert_eq!(completion.len(), self.completion.len(), "machine count mismatch");
        self.assignment.copy_from_slice(assignment);
        self.completion.copy_from_slice(completion);
        self.rebuild_index();
        self.rescan_max();
        #[cfg(debug_assertions)]
        {
            let mut check = instance.ready_times().to_vec();
            for (t, &m) in self.assignment.iter().enumerate() {
                check[m as usize] += instance.etc().etc_on(m as usize, t);
            }
            debug_assert!(
                check.iter().zip(&self.completion).all(|(a, b)| a.to_bits() == b.to_bits()),
                "loaded completion times are not the canonical accumulation"
            );
        }
        let _ = instance;
    }

    /// [`Schedule::load_evaluated`] minus the index rebuild: genes and
    /// completion times land, the argmax is refreshed, and the CSR index
    /// is left **stale** (readers debug-assert against it) until
    /// [`Schedule::ensure_index`]. This is the engines' replacement hot
    /// path — an accepted non-local-search offspring's index is read by
    /// nothing mid-run, so the counting sort is deferred to the one
    /// fix-up pass at run exit.
    pub fn load_evaluated_deferred(
        &mut self,
        instance: &EtcInstance,
        assignment: &[u32],
        completion: &[f64],
    ) {
        assert_eq!(assignment.len(), self.assignment.len(), "task count mismatch");
        assert_eq!(completion.len(), self.completion.len(), "machine count mismatch");
        self.assignment.copy_from_slice(assignment);
        self.completion.copy_from_slice(completion);
        self.index_stale = true;
        self.rescan_max();
        let _ = instance;
    }

    /// Copies another schedule's contents into this one without
    /// allocating: five flat `copy_from_slice` calls (the CSR layout has
    /// no nested buffers) — the hot path for parent snapshots and
    /// replacement, which the engines run three times per cell evolution,
    /// twice of them under a read lock.
    pub fn copy_from(&mut self, other: &Schedule) {
        self.assignment.copy_from_slice(&other.assignment);
        self.completion.copy_from_slice(&other.completion);
        self.bucket_tasks.copy_from_slice(&other.bucket_tasks);
        self.bucket_start.copy_from_slice(&other.bucket_start);
        self.pos.copy_from_slice(&other.pos);
        self.max_machine = other.max_machine;
        self.index_stale = other.index_stale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> EtcInstance {
        // ETC[t][m] = (t+1)(m+1): 4 tasks × 3 machines.
        EtcInstance::toy(4, 3)
    }

    #[test]
    fn from_assignment_computes_completion() {
        let inst = toy();
        // tasks 0,1 -> machine 0; task 2 -> machine 1; task 3 -> machine 2.
        let s = Schedule::from_assignment(&inst, vec![0, 0, 1, 2]);
        assert_eq!(s.completion(0), 1.0 + 2.0);
        assert_eq!(s.completion(1), 6.0); // (2+1)*(1+1)
        assert_eq!(s.completion(2), 12.0); // (3+1)*(2+1)
        assert_eq!(s.makespan(), 12.0);
        assert_eq!(s.most_loaded_machine(), 2);
        assert_eq!(s.least_loaded_machine(), 0);
    }

    #[test]
    fn ready_times_enter_completion() {
        let etc = etc_model::EtcMatrix::from_task_major(1, 2, vec![10.0, 1.0]);
        let inst = EtcInstance::with_ready_times("r", etc, vec![0.0, 100.0]);
        let s = Schedule::from_assignment(&inst, vec![1]);
        assert_eq!(s.completion(1), 101.0);
        assert_eq!(s.completion(0), 0.0);
        assert_eq!(s.makespan(), 101.0);
    }

    #[test]
    fn move_task_is_incremental_and_correct() {
        let inst = toy();
        let mut s = Schedule::from_assignment(&inst, vec![0, 0, 1, 2]);
        let old = s.move_task(&inst, 3, 0); // ETC[3][2]=12 leaves m2, ETC[3][0]=4 joins m0
        assert_eq!(old, 2);
        assert_eq!(s.completion(2), 0.0);
        assert_eq!(s.completion(0), 3.0 + 4.0);
        assert_eq!(s.machine_of(3), 0);
        let mut fresh = s.clone();
        fresh.renormalize(&inst);
        assert_eq!(fresh, s);
    }

    #[test]
    fn move_to_same_machine_is_noop() {
        let inst = toy();
        let mut s = Schedule::from_assignment(&inst, vec![0, 1, 2, 0]);
        let before = s.clone();
        s.move_task(&inst, 1, 1);
        assert_eq!(s, before);
    }

    #[test]
    fn swap_tasks_swaps_machines() {
        let inst = toy();
        let mut s = Schedule::from_assignment(&inst, vec![0, 1, 2, 0]);
        s.swap_tasks(&inst, 0, 2);
        assert_eq!(s.machine_of(0), 2);
        assert_eq!(s.machine_of(2), 0);
        let mut fresh = s.clone();
        fresh.renormalize(&inst);
        for m in 0..3 {
            assert!((fresh.completion(m) - s.completion(m)).abs() < 1e-9);
        }
    }

    #[test]
    fn swap_same_task_is_noop() {
        let inst = toy();
        let mut s = Schedule::round_robin(&inst);
        let before = s.clone();
        s.swap_tasks(&inst, 2, 2);
        assert_eq!(s, before);
    }

    #[test]
    fn round_robin_distributes() {
        let inst = toy();
        let s = Schedule::round_robin(&inst);
        assert_eq!(s.assignment(), &[0, 1, 2, 0]);
    }

    #[test]
    fn random_is_valid_and_seed_deterministic() {
        let inst = toy();
        let mut r1 = SmallRng::seed_from_u64(5);
        let mut r2 = SmallRng::seed_from_u64(5);
        let a = Schedule::random(&inst, &mut r1);
        let b = Schedule::random(&inst, &mut r2);
        assert_eq!(a, b);
        for t in 0..inst.n_tasks() {
            assert!(a.machine_of(t) < inst.n_machines());
        }
    }

    #[test]
    fn machines_by_load_sorted() {
        let inst = toy();
        let s = Schedule::from_assignment(&inst, vec![2, 2, 1, 0]);
        let order = s.machines_by_load();
        for w in order.windows(2) {
            assert!(s.completion(w[0]) <= s.completion(w[1]));
        }
    }

    #[test]
    fn tasks_on_and_count() {
        let inst = toy();
        let s = Schedule::from_assignment(&inst, vec![1, 1, 0, 1]);
        assert_eq!(s.tasks_on(1), [0, 1, 3]);
        assert_eq!(s.count_on(1), 3);
        assert_eq!(s.count_on(2), 0);
        assert!(s.validate_index().is_ok());
    }

    #[test]
    fn index_follows_moves_and_swaps() {
        let inst = toy();
        let mut s = Schedule::from_assignment(&inst, vec![1, 1, 0, 1]);
        s.move_task(&inst, 1, 2);
        assert_eq!(s.tasks_on(1), [0, 3]);
        assert_eq!(s.tasks_on(2), [1]);
        s.swap_tasks(&inst, 0, 2);
        assert_eq!(s.tasks_on(0), [0]);
        assert_eq!(s.tasks_on(1), [2, 3]);
        assert!(s.validate_index().is_ok());
    }

    #[test]
    fn index_is_canonical_regardless_of_history() {
        // Reaching the same assignment through different move orders must
        // produce bit-identical indices (sorted buckets).
        let inst = toy();
        let mut a = Schedule::from_assignment(&inst, vec![0, 0, 0, 0]);
        a.move_task(&inst, 3, 1);
        a.move_task(&inst, 1, 1);
        let mut b = Schedule::from_assignment(&inst, vec![0, 0, 0, 0]);
        b.move_task(&inst, 1, 1);
        b.move_task(&inst, 3, 1);
        assert_eq!(a.tasks_on(1), b.tasks_on(1));
        assert_eq!(a.tasks_on(1), [1, 3]);
    }

    #[test]
    fn random_task_on_picks_uniformly_from_bucket() {
        let inst = toy();
        let s = Schedule::from_assignment(&inst, vec![1, 1, 0, 1]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(s.random_task_on(2, &mut rng), None);
        let mut seen = [false; 4];
        for _ in 0..100 {
            let t = s.random_task_on(1, &mut rng).unwrap();
            assert_ne!(t, 2, "task 2 is on machine 0");
            seen[t] = true;
        }
        assert!(seen[0] && seen[1] && seen[3]);
    }

    #[test]
    fn rewrite_assignment_matches_from_assignment() {
        let inst = toy();
        let mut s = Schedule::from_assignment(&inst, vec![0, 0, 0, 0]);
        let target = [2u32, 1, 0, 1];
        s.rewrite_assignment(&inst, |t| target[t]);
        assert_eq!(s, Schedule::from_assignment(&inst, target.to_vec()));
        assert!(s.validate_index().is_ok());
    }

    #[test]
    fn validate_index_reports_corrupt_offsets_without_panicking() {
        let inst = toy();
        let mut s = Schedule::from_assignment(&inst, vec![0, 1, 2, 0]);
        // Forge an interior offset past the payload length: the checker
        // must return Err, not slice out of bounds.
        s.bucket_start[1] = 99;
        let err = s.validate_index().unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
    }

    #[test]
    fn copy_from_matches_clone() {
        let inst = toy();
        let a = Schedule::from_assignment(&inst, vec![0, 1, 2, 0]);
        let mut b = Schedule::round_robin(&inst);
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn makespan_tracks_argmax_through_random_moves() {
        let inst = EtcInstance::toy(24, 5);
        let mut s = Schedule::round_robin(&inst);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..500 {
            let t = rng.gen_range(0..24);
            let m = rng.gen_range(0..5);
            s.move_task(&inst, t, m);
            assert_eq!(s.makespan().to_bits(), s.makespan_full().to_bits());
        }
    }

    #[test]
    fn move_task_completion_is_bitwise_canonical() {
        let inst = EtcInstance::toy(24, 5);
        let mut s = Schedule::round_robin(&inst);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..500 {
            let t = rng.gen_range(0..24);
            let m = rng.gen_range(0..5);
            s.move_task(&inst, t, m);
            let fresh = Schedule::from_assignment(&inst, s.assignment().to_vec());
            for mac in 0..5 {
                assert_eq!(s.completion(mac).to_bits(), fresh.completion(mac).to_bits());
            }
        }
    }

    #[test]
    fn load_evaluated_rebuilds_index_and_argmax() {
        let inst = toy();
        let fresh = Schedule::from_assignment(&inst, vec![2, 1, 0, 1]);
        let mut s = Schedule::round_robin(&inst);
        s.load_evaluated(&inst, fresh.assignment(), fresh.completion_times());
        assert_eq!(s, fresh);
        assert_eq!(s.makespan().to_bits(), fresh.makespan().to_bits());
        assert_eq!(s.makespan().to_bits(), s.makespan_full().to_bits());
        assert!(s.validate_index().is_ok());
    }

    #[test]
    fn evacuate_machine_empties_it_and_stays_canonical() {
        let inst = EtcInstance::toy(24, 5);
        let mut s = Schedule::round_robin(&inst);
        // Greedy least-loaded among the survivors of machine 2.
        let moved = s.evacuate_machine(&inst, 2, |_, sched| {
            (0..5)
                .filter(|&m| m != 2)
                .min_by(|&a, &b| sched.completion(a).partial_cmp(&sched.completion(b)).unwrap())
                .unwrap()
        });
        assert!(moved > 0);
        assert_eq!(s.count_on(2), 0);
        assert!(s.assignment().iter().all(|&m| m != 2));
        assert!(s.validate_index().is_ok());
        // Canonical CT + tracked argmax survive the repair bitwise.
        let fresh = Schedule::from_assignment(&inst, s.assignment().to_vec());
        for m in 0..5 {
            assert_eq!(s.completion(m).to_bits(), fresh.completion(m).to_bits());
        }
        assert_eq!(s.makespan().to_bits(), s.makespan_full().to_bits());
    }

    #[test]
    fn evacuate_machine_of_empty_machine_is_noop() {
        let inst = EtcInstance::toy(4, 4);
        let mut s = Schedule::from_assignment(&inst, vec![0, 0, 1, 1]);
        let before = s.clone();
        assert_eq!(s.evacuate_machine(&inst, 3, |_, _| unreachable!()), 0);
        assert_eq!(s, before);
    }

    #[test]
    fn evacuate_choose_sees_partial_repair() {
        let inst = EtcInstance::toy(6, 3);
        let mut s = Schedule::from_assignment(&inst, vec![0, 0, 0, 1, 1, 2]);
        let mut seen = Vec::new();
        s.evacuate_machine(&inst, 0, |task, sched| {
            seen.push((task, sched.count_on(0)));
            1
        });
        // Three tasks evacuated; the callback watched machine 0 drain.
        assert_eq!(seen.iter().map(|&(_, c)| c).collect::<Vec<_>>(), vec![3, 2, 1]);
        assert_eq!(s.count_on(0), 0);
        assert_eq!(s.count_on(1), 5);
    }

    #[test]
    #[should_panic(expected = "onto the evacuated machine")]
    fn evacuate_onto_self_panics() {
        let inst = EtcInstance::toy(4, 2);
        let mut s = Schedule::from_assignment(&inst, vec![0, 0, 1, 1]);
        s.evacuate_machine(&inst, 0, |_, _| 0);
    }

    #[test]
    #[should_panic(expected = "one machine per task")]
    fn wrong_length_panics() {
        Schedule::from_assignment(&toy(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "assigned to machine")]
    fn out_of_range_machine_panics() {
        Schedule::from_assignment(&toy(), vec![0, 1, 2, 9]);
    }
}
