//! The `S` + `CT` solution representation with incremental updates.

use etc_model::EtcInstance;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A complete assignment of every task to one machine, with cached
/// per-machine completion times.
///
/// All mutators take the [`EtcInstance`] as an argument (the schedule does
/// not own it), update `CT` incrementally in O(1) per moved task, and keep
/// the representation valid. Makespan evaluation is O(#machines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// `assignment[t] = m`: task `t` runs on machine `m`.
    assignment: Vec<u32>,
    /// `completion[m]`: ready time of `m` plus the ETC of every task
    /// assigned to it.
    completion: Vec<f64>,
}

impl Schedule {
    /// Builds a schedule from an explicit assignment, computing `CT` from
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the instance's task
    /// count or any machine index is out of range.
    pub fn from_assignment(instance: &EtcInstance, assignment: Vec<u32>) -> Self {
        assert_eq!(assignment.len(), instance.n_tasks(), "one machine per task");
        let n_machines = instance.n_machines();
        let mut completion: Vec<f64> = instance.ready_times().to_vec();
        for (t, &m) in assignment.iter().enumerate() {
            let m = m as usize;
            assert!(m < n_machines, "task {t} assigned to machine {m} of {n_machines}");
            completion[m] += instance.etc().etc_on(m, t);
        }
        Self { assignment, completion }
    }

    /// A uniformly random schedule.
    pub fn random(instance: &EtcInstance, rng: &mut impl Rng) -> Self {
        let n_machines = instance.n_machines() as u32;
        let assignment = (0..instance.n_tasks()).map(|_| rng.gen_range(0..n_machines)).collect();
        Self::from_assignment(instance, assignment)
    }

    /// A round-robin schedule (task `t` on machine `t mod M`) — a cheap
    /// deterministic starting point used in tests and examples.
    pub fn round_robin(instance: &EtcInstance) -> Self {
        let m = instance.n_machines() as u32;
        let assignment = (0..instance.n_tasks() as u32).map(|t| t % m).collect();
        Self::from_assignment(instance, assignment)
    }

    /// Number of tasks.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.assignment.len()
    }

    /// Number of machines.
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.completion.len()
    }

    /// Machine assigned to `task`.
    #[inline]
    pub fn machine_of(&self, task: usize) -> usize {
        self.assignment[task] as usize
    }

    /// The raw assignment vector (`S` in the paper).
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The cached completion time of `machine` (`CT[m]`), its *load*.
    #[inline]
    pub fn completion(&self, machine: usize) -> f64 {
        self.completion[machine]
    }

    /// All cached completion times.
    #[inline]
    pub fn completion_times(&self) -> &[f64] {
        &self.completion
    }

    /// The paper's `evaluate()`: the maximum completion time.
    #[inline]
    pub fn makespan(&self) -> f64 {
        self.completion.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the most loaded machine (ties break to the lowest index);
    /// its completion time *defines* the makespan.
    pub fn most_loaded_machine(&self) -> usize {
        let mut best = 0;
        for m in 1..self.completion.len() {
            if self.completion[m] > self.completion[best] {
                best = m;
            }
        }
        best
    }

    /// Index of the least loaded machine (ties break to the lowest index).
    pub fn least_loaded_machine(&self) -> usize {
        let mut best = 0;
        for m in 1..self.completion.len() {
            if self.completion[m] < self.completion[best] {
                best = m;
            }
        }
        best
    }

    /// Machine indices sorted by ascending completion time (the sort in
    /// H2LL's Algorithm 4 line 2). Allocates; hot callers should reuse
    /// [`Schedule::sort_machines_into`].
    pub fn machines_by_load(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.completion.len()).collect();
        self.sort_machines_into(&mut order);
        order
    }

    /// Sorts the provided index buffer by ascending completion time without
    /// allocating. `order` must contain each machine index exactly once.
    pub fn sort_machines_into(&self, order: &mut [usize]) {
        debug_assert_eq!(order.len(), self.completion.len());
        order.sort_by(|&a, &b| {
            self.completion[a]
                .partial_cmp(&self.completion[b])
                .expect("completion times are finite")
                .then(a.cmp(&b))
        });
    }

    /// Moves `task` to `new_machine`, updating both completion times
    /// incrementally (the paper's O(1) update). Returns the previous
    /// machine. A move to the same machine is a no-op.
    pub fn move_task(&mut self, instance: &EtcInstance, task: usize, new_machine: usize) -> usize {
        let old = self.assignment[task] as usize;
        if old == new_machine {
            return old;
        }
        let etc = instance.etc();
        self.completion[old] -= etc.etc_on(old, task);
        self.completion[new_machine] += etc.etc_on(new_machine, task);
        self.assignment[task] = new_machine as u32;
        old
    }

    /// Swaps the machines of two tasks, incrementally.
    pub fn swap_tasks(&mut self, instance: &EtcInstance, a: usize, b: usize) {
        if a == b {
            return;
        }
        let ma = self.assignment[a] as usize;
        let mb = self.assignment[b] as usize;
        self.move_task(instance, a, mb);
        self.move_task(instance, b, ma);
    }

    /// Tasks currently assigned to `machine` (O(#tasks) scan).
    pub fn tasks_on(&self, machine: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m as usize == machine)
            .map(|(t, _)| t)
            .collect()
    }

    /// Number of tasks on `machine` (O(#tasks) scan).
    pub fn count_on(&self, machine: usize) -> usize {
        self.assignment.iter().filter(|&&m| m as usize == machine).count()
    }

    /// Recomputes `CT` from scratch, discarding accumulated floating-point
    /// drift from long runs of incremental updates.
    pub fn renormalize(&mut self, instance: &EtcInstance) {
        let etc = instance.etc();
        self.completion.copy_from_slice(instance.ready_times());
        for (t, &m) in self.assignment.iter().enumerate() {
            let m = m as usize;
            self.completion[m] += etc.etc_on(m, t);
        }
    }

    /// Copies another schedule's contents into this one without
    /// reallocating — the hot path for replacement under a write lock.
    pub fn copy_from(&mut self, other: &Schedule) {
        self.assignment.copy_from_slice(&other.assignment);
        self.completion.copy_from_slice(&other.completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> EtcInstance {
        // ETC[t][m] = (t+1)(m+1): 4 tasks × 3 machines.
        EtcInstance::toy(4, 3)
    }

    #[test]
    fn from_assignment_computes_completion() {
        let inst = toy();
        // tasks 0,1 -> machine 0; task 2 -> machine 1; task 3 -> machine 2.
        let s = Schedule::from_assignment(&inst, vec![0, 0, 1, 2]);
        assert_eq!(s.completion(0), 1.0 + 2.0);
        assert_eq!(s.completion(1), 6.0); // (2+1)*(1+1)
        assert_eq!(s.completion(2), 12.0); // (3+1)*(2+1)
        assert_eq!(s.makespan(), 12.0);
        assert_eq!(s.most_loaded_machine(), 2);
        assert_eq!(s.least_loaded_machine(), 0);
    }

    #[test]
    fn ready_times_enter_completion() {
        let etc = etc_model::EtcMatrix::from_task_major(1, 2, vec![10.0, 1.0]);
        let inst = EtcInstance::with_ready_times("r", etc, vec![0.0, 100.0]);
        let s = Schedule::from_assignment(&inst, vec![1]);
        assert_eq!(s.completion(1), 101.0);
        assert_eq!(s.completion(0), 0.0);
        assert_eq!(s.makespan(), 101.0);
    }

    #[test]
    fn move_task_is_incremental_and_correct() {
        let inst = toy();
        let mut s = Schedule::from_assignment(&inst, vec![0, 0, 1, 2]);
        let old = s.move_task(&inst, 3, 0); // ETC[3][2]=12 leaves m2, ETC[3][0]=4 joins m0
        assert_eq!(old, 2);
        assert_eq!(s.completion(2), 0.0);
        assert_eq!(s.completion(0), 3.0 + 4.0);
        assert_eq!(s.machine_of(3), 0);
        let mut fresh = s.clone();
        fresh.renormalize(&inst);
        assert_eq!(fresh, s);
    }

    #[test]
    fn move_to_same_machine_is_noop() {
        let inst = toy();
        let mut s = Schedule::from_assignment(&inst, vec![0, 1, 2, 0]);
        let before = s.clone();
        s.move_task(&inst, 1, 1);
        assert_eq!(s, before);
    }

    #[test]
    fn swap_tasks_swaps_machines() {
        let inst = toy();
        let mut s = Schedule::from_assignment(&inst, vec![0, 1, 2, 0]);
        s.swap_tasks(&inst, 0, 2);
        assert_eq!(s.machine_of(0), 2);
        assert_eq!(s.machine_of(2), 0);
        let mut fresh = s.clone();
        fresh.renormalize(&inst);
        for m in 0..3 {
            assert!((fresh.completion(m) - s.completion(m)).abs() < 1e-9);
        }
    }

    #[test]
    fn swap_same_task_is_noop() {
        let inst = toy();
        let mut s = Schedule::round_robin(&inst);
        let before = s.clone();
        s.swap_tasks(&inst, 2, 2);
        assert_eq!(s, before);
    }

    #[test]
    fn round_robin_distributes() {
        let inst = toy();
        let s = Schedule::round_robin(&inst);
        assert_eq!(s.assignment(), &[0, 1, 2, 0]);
    }

    #[test]
    fn random_is_valid_and_seed_deterministic() {
        let inst = toy();
        let mut r1 = SmallRng::seed_from_u64(5);
        let mut r2 = SmallRng::seed_from_u64(5);
        let a = Schedule::random(&inst, &mut r1);
        let b = Schedule::random(&inst, &mut r2);
        assert_eq!(a, b);
        for t in 0..inst.n_tasks() {
            assert!(a.machine_of(t) < inst.n_machines());
        }
    }

    #[test]
    fn machines_by_load_sorted() {
        let inst = toy();
        let s = Schedule::from_assignment(&inst, vec![2, 2, 1, 0]);
        let order = s.machines_by_load();
        for w in order.windows(2) {
            assert!(s.completion(w[0]) <= s.completion(w[1]));
        }
    }

    #[test]
    fn tasks_on_and_count() {
        let inst = toy();
        let s = Schedule::from_assignment(&inst, vec![1, 1, 0, 1]);
        assert_eq!(s.tasks_on(1), vec![0, 1, 3]);
        assert_eq!(s.count_on(1), 3);
        assert_eq!(s.count_on(2), 0);
    }

    #[test]
    fn copy_from_matches_clone() {
        let inst = toy();
        let a = Schedule::from_assignment(&inst, vec![0, 1, 2, 0]);
        let mut b = Schedule::round_robin(&inst);
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one machine per task")]
    fn wrong_length_panics() {
        Schedule::from_assignment(&toy(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "assigned to machine")]
    fn out_of_range_machine_panics() {
        Schedule::from_assignment(&toy(), vec![0, 1, 2, 9]);
    }
}
