//! Evaluation criteria for schedules.
//!
//! The paper optimizes **makespan** only (§2.2) but motivates the problem
//! with makespan *and flowtime* (§2.1); the flowtime metric here is the one
//! used by the baselines' papers (Xhafa et al.): tasks on each machine are
//! processed in shortest-processing-time order, and flowtime is the sum of
//! all task finishing times.

use crate::schedule::Schedule;
use etc_model::EtcInstance;

/// Per-machine loads (completion times), newly allocated.
pub fn machine_loads(schedule: &Schedule) -> Vec<f64> {
    schedule.completion_times().to_vec()
}

/// Flowtime: Σ over tasks of their finishing time, with each machine
/// processing its tasks in SPT (shortest processing time first) order —
/// the order that minimizes per-machine flowtime.
pub fn flowtime(instance: &EtcInstance, schedule: &Schedule) -> f64 {
    let mut total = 0.0;
    let mut times: Vec<f64> = Vec::new();
    for m in 0..instance.n_machines() {
        times.clear();
        for t in 0..schedule.n_tasks() {
            if schedule.machine_of(t) == m {
                times.push(instance.etc().etc_on(m, t));
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut finish = instance.ready(m);
        for &p in &times {
            finish += p;
            total += finish;
        }
    }
    total
}

/// Average machine utilization: `mean(CT) / max(CT)` — 1.0 means perfectly
/// balanced loads.
pub fn utilization(schedule: &Schedule) -> f64 {
    let ct = schedule.completion_times();
    let max = schedule.makespan();
    if max <= 0.0 {
        return 1.0;
    }
    let mean = ct.iter().sum::<f64>() / ct.len() as f64;
    mean / max
}

/// Relative load imbalance: `(max(CT) - min(CT)) / max(CT)` — 0.0 means
/// perfectly balanced.
pub fn load_imbalance(schedule: &Schedule) -> f64 {
    let max = schedule.makespan();
    if max <= 0.0 {
        return 0.0;
    }
    let min = schedule.completion_times().iter().copied().fold(f64::INFINITY, f64::min);
    (max - min) / max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> EtcInstance {
        EtcInstance::toy(4, 2) // ETC[t][m] = (t+1)(m+1)
    }

    #[test]
    fn flowtime_spt_order() {
        let inst = toy();
        // All tasks on machine 0: processing times 1,2,3,4 in SPT order.
        let s = Schedule::from_assignment(&inst, vec![0, 0, 0, 0]);
        // Finishing times: 1, 3, 6, 10 -> flowtime 20.
        assert_eq!(flowtime(&inst, &s), 20.0);
    }

    #[test]
    fn flowtime_across_machines() {
        let inst = toy();
        // Machine 0: tasks 0,1 (1,2) -> 1+3=4. Machine 1: tasks 2,3 (6,8) -> 6+14=20.
        let s = Schedule::from_assignment(&inst, vec![0, 0, 1, 1]);
        assert_eq!(flowtime(&inst, &s), 24.0);
    }

    #[test]
    fn flowtime_respects_ready_times() {
        let etc = etc_model::EtcMatrix::from_task_major(1, 1, vec![2.0]);
        let inst = EtcInstance::with_ready_times("r", etc, vec![10.0]);
        let s = Schedule::from_assignment(&inst, vec![0]);
        assert_eq!(flowtime(&inst, &s), 12.0);
    }

    #[test]
    fn utilization_perfectly_balanced() {
        let etc = etc_model::EtcMatrix::from_task_major(2, 2, vec![5.0, 9.0, 9.0, 5.0]);
        let inst = EtcInstance::new("b", etc);
        let s = Schedule::from_assignment(&inst, vec![0, 1]);
        assert_eq!(utilization(&s), 1.0);
        assert_eq!(load_imbalance(&s), 0.0);
    }

    #[test]
    fn utilization_imbalanced() {
        let inst = toy();
        let s = Schedule::from_assignment(&inst, vec![0, 0, 0, 0]);
        // CT = [10, 0]: mean 5, max 10.
        assert_eq!(utilization(&s), 0.5);
        assert_eq!(load_imbalance(&s), 1.0);
    }

    #[test]
    fn machine_loads_copies_ct() {
        let inst = toy();
        let s = Schedule::from_assignment(&inst, vec![0, 1, 0, 1]);
        assert_eq!(machine_loads(&s), s.completion_times());
    }
}
