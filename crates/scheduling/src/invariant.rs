//! Representation invariant checking.
//!
//! The cached `CT` vector must always equal the from-scratch recomputation
//! `ready[m] + Σ ETC[t][m]`. Incremental f64 updates accumulate drift, so
//! equality is checked with a relative tolerance. The per-machine task
//! index is integer-exact and must agree with the assignment *exactly*.
//! Every operator in the core crate is property-tested against this check.

use crate::schedule::Schedule;
use etc_model::EtcInstance;

/// Default relative tolerance for CT drift. Incremental updates perform one
/// add/sub pair per move; thousands of moves stay far below this bound.
pub const DEFAULT_TOLERANCE: f64 = 1e-8;

/// Why a schedule failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantError {
    /// A task's machine index is out of range.
    MachineOutOfRange {
        /// Offending task.
        task: usize,
        /// Its (invalid) machine index.
        machine: usize,
    },
    /// A cached completion time drifted from its recomputed value.
    CompletionDrift {
        /// Machine whose CT drifted.
        machine: usize,
        /// Cached value.
        cached: f64,
        /// Freshly recomputed value.
        recomputed: f64,
    },
    /// Dimension mismatch between schedule and instance.
    DimensionMismatch {
        /// What mismatched.
        detail: String,
    },
    /// The per-machine task index disagrees with the assignment.
    IndexCorrupt {
        /// What disagreed (from [`Schedule::validate_index`]).
        detail: String,
    },
}

impl std::fmt::Display for InvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantError::MachineOutOfRange { task, machine } => {
                write!(f, "task {task} assigned to out-of-range machine {machine}")
            }
            InvariantError::CompletionDrift { machine, cached, recomputed } => write!(
                f,
                "CT[{machine}] cached {cached} but recomputed {recomputed} (drift {})",
                (cached - recomputed).abs()
            ),
            InvariantError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            InvariantError::IndexCorrupt { detail } => {
                write!(f, "task index corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for InvariantError {}

/// Validates a schedule against its instance with the default tolerance.
pub fn check_schedule(instance: &EtcInstance, schedule: &Schedule) -> Result<(), InvariantError> {
    check_schedule_with_tolerance(instance, schedule, DEFAULT_TOLERANCE)
}

/// Validates a schedule with an explicit relative tolerance.
pub fn check_schedule_with_tolerance(
    instance: &EtcInstance,
    schedule: &Schedule,
    rel_tol: f64,
) -> Result<(), InvariantError> {
    if schedule.n_tasks() != instance.n_tasks() {
        return Err(InvariantError::DimensionMismatch {
            detail: format!(
                "schedule has {} tasks, instance {}",
                schedule.n_tasks(),
                instance.n_tasks()
            ),
        });
    }
    if schedule.n_machines() != instance.n_machines() {
        return Err(InvariantError::DimensionMismatch {
            detail: format!(
                "schedule has {} machines, instance {}",
                schedule.n_machines(),
                instance.n_machines()
            ),
        });
    }
    let n_machines = instance.n_machines();
    let mut recomputed: Vec<f64> = instance.ready_times().to_vec();
    for t in 0..schedule.n_tasks() {
        let m = schedule.machine_of(t);
        if m >= n_machines {
            return Err(InvariantError::MachineOutOfRange { task: t, machine: m });
        }
        recomputed[m] += instance.etc().etc_on(m, t);
    }
    for (m, &fresh) in recomputed.iter().enumerate() {
        let cached = schedule.completion(m);
        let scale = fresh.abs().max(1.0);
        if (cached - fresh).abs() > rel_tol * scale {
            return Err(InvariantError::CompletionDrift { machine: m, cached, recomputed: fresh });
        }
    }
    schedule.validate_index().map_err(|detail| InvariantError::IndexCorrupt { detail })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fresh_schedule_passes() {
        let inst = EtcInstance::toy(8, 3);
        let s = Schedule::round_robin(&inst);
        assert!(check_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn survives_many_incremental_moves() {
        let inst = EtcInstance::toy(32, 4);
        let mut s = Schedule::round_robin(&inst);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let t = rng.gen_range(0..inst.n_tasks());
            let m = rng.gen_range(0..inst.n_machines());
            s.move_task(&inst, t, m);
        }
        assert!(check_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn wrong_instance_dimension_detected() {
        let inst = EtcInstance::toy(8, 3);
        let other = EtcInstance::toy(9, 3);
        let s = Schedule::round_robin(&inst);
        let err = check_schedule(&other, &s).unwrap_err();
        assert!(matches!(err, InvariantError::DimensionMismatch { .. }));
    }

    #[test]
    fn drift_detected() {
        let inst = EtcInstance::toy(4, 2);
        let good = Schedule::from_assignment(&inst, vec![0, 1, 0, 1]);
        // Forge a drifted CT by deserializing a tampered clone.
        let mut forged = good.clone();
        // Move then "forget" to update by moving on a *different* instance
        // whose ETC differs: toy(4,2) vs a doubled matrix.
        let doubled = EtcInstance::new(
            "d",
            etc_model::EtcMatrix::from_fn(4, 2, |t, m| 2.0 * ((t + 1) * (m + 1)) as f64),
        );
        forged.move_task(&doubled, 0, 1);
        let err = check_schedule(&inst, &forged).unwrap_err();
        assert!(matches!(err, InvariantError::CompletionDrift { .. }), "{err}");
    }

    #[test]
    fn error_display() {
        let e = InvariantError::MachineOutOfRange { task: 3, machine: 99 };
        assert!(e.to_string().contains("task 3"));
        let e = InvariantError::CompletionDrift { machine: 1, cached: 2.0, recomputed: 3.0 };
        assert!(e.to_string().contains("CT[1]"));
        let e = InvariantError::IndexCorrupt { detail: "pos[3] stale".into() };
        assert!(e.to_string().contains("index corrupt"));
    }
}
