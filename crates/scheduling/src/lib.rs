//! # Scheduling substrate
//!
//! The solution representation of the PA-CGA paper (§3.3, Figure 3):
//!
//! * an assignment vector `S[task] = machine`, and
//! * a **cached completion-time vector** `CT[machine]`, kept up to date
//!   *incrementally* by every operator — adding or removing a single ETC
//!   entry — instead of being recomputed from scratch. The paper's
//!   `evaluate()` then reduces to taking `max(CT)`.
//!
//! [`Schedule`] encapsulates both arrays and only exposes mutations that
//! preserve the invariant `CT[m] = ready[m] + Σ_{t: S[t]=m} ETC[t][m]`
//! (up to floating-point drift; see [`invariant`]).
//!
//! [`metrics`] adds the evaluation criteria used in the paper and its
//! baselines (makespan, flowtime, utilization, imbalance).

pub mod batch_eval;
pub mod gantt;
pub mod invariant;
pub mod metrics;
pub mod schedule;

pub use batch_eval::OffspringBatch;
pub use invariant::{check_schedule, InvariantError};
pub use metrics::{flowtime, load_imbalance, machine_loads, utilization};
pub use schedule::Schedule;
