//! ASCII Gantt rendering of schedules — one row per machine, bar length
//! proportional to completion time, with per-machine task counts. Used by
//! the examples and the CLI to make schedules inspectable at a glance.
//!
//! ```text
//! m00 |############################                  | 12034.5 (31 tasks)
//! m01 |##############################################| 19873.1 (35 tasks)  <- makespan
//! ```

use crate::schedule::Schedule;

/// Renders per-machine load bars. `width` is the bar width in characters
/// (the longest bar, the makespan machine, spans it fully).
pub fn render_loads(schedule: &Schedule, width: usize) -> String {
    assert!(width >= 4, "bar width too small");
    let makespan = schedule.makespan();
    let most_loaded = schedule.most_loaded_machine();
    let mut out = String::new();
    for m in 0..schedule.n_machines() {
        let ct = schedule.completion(m);
        let filled =
            if makespan > 0.0 { ((ct / makespan) * width as f64).round() as usize } else { 0 };
        let marker = if m == most_loaded { "  <- makespan" } else { "" };
        out.push_str(&format!(
            "m{m:02} |{}{}| {ct:.1} ({} tasks){marker}\n",
            "#".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
            schedule.count_on(m),
        ));
    }
    out
}

/// Renders a compact per-machine timeline of task segments for small
/// instances: each task appears as its id followed by a proportional run
/// of `-`. Machines with many tasks elide detail (`…`) past `max_segments`.
pub fn render_timeline(
    schedule: &Schedule,
    etc_of: impl Fn(usize, usize) -> f64,
    max_segments: usize,
) -> String {
    let makespan = schedule.makespan().max(1e-12);
    let scale = 48.0 / makespan;
    let mut out = String::new();
    for m in 0..schedule.n_machines() {
        out.push_str(&format!("m{m:02} |"));
        let tasks = schedule.tasks_on(m);
        for (i, &t) in tasks.iter().enumerate() {
            if i >= max_segments {
                out.push('…');
                break;
            }
            let span = ((etc_of(m, t as usize) * scale).round() as usize).max(1);
            out.push_str(&format!("{t}{}", "-".repeat(span)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etc_model::EtcInstance;

    #[test]
    fn load_bars_scale_to_makespan() {
        let inst = EtcInstance::toy(6, 3);
        let s = Schedule::from_assignment(&inst, vec![0, 0, 1, 1, 2, 2]);
        let out = render_loads(&s, 40);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(out.contains("<- makespan"));
        // The makespan machine's bar is the longest.
        let hashes = |l: &str| l.matches('#').count();
        let most = s.most_loaded_machine();
        for (m, l) in lines.iter().enumerate() {
            assert!(hashes(l) <= hashes(lines[most]), "machine {m} bar too long");
        }
    }

    #[test]
    fn task_counts_shown() {
        let inst = EtcInstance::toy(4, 2);
        let s = Schedule::from_assignment(&inst, vec![0, 0, 0, 1]);
        let out = render_loads(&s, 20);
        assert!(out.contains("(3 tasks)"));
        assert!(out.contains("(1 tasks)"));
    }

    #[test]
    fn timeline_lists_tasks_in_order() {
        let inst = EtcInstance::toy(4, 2);
        let s = Schedule::from_assignment(&inst, vec![0, 1, 0, 1]);
        let out = render_timeline(&s, |m, t| inst.etc().etc_on(m, t), 10);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains('0') && lines[0].contains('2'));
        assert!(lines[1].contains('1') && lines[1].contains('3'));
    }

    #[test]
    fn timeline_elides_long_machines() {
        let inst = EtcInstance::toy(20, 2);
        let s = Schedule::from_assignment(&inst, vec![0; 20]);
        let out = render_timeline(&s, |m, t| inst.etc().etc_on(m, t), 3);
        assert!(out.lines().next().unwrap().contains('…'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_width_panics() {
        let inst = EtcInstance::toy(2, 2);
        let s = Schedule::round_robin(&inst);
        render_loads(&s, 2);
    }
}
