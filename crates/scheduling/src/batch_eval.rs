//! Cache-hot batched offspring evaluation (DESIGN.md §9).
//!
//! The engines evaluate offspring in batches of 8–16 over one **slab**:
//! a row-major gene matrix (`B × T`) plus a completion-time matrix
//! (`B × M`). [`OffspringBatch::evaluate`] walks tasks in the *outer*
//! loop and rows in the inner one, so each task's ETC row
//! ([`etc_model::EtcMatrix::task_row`], 16 machines = two cache lines) is
//! loaded once and serves every offspring in the pass — the cache-hot
//! batching argument of `sethhall__matchy`'s `BATCH_PROCESSING_PROPOSAL`.
//! Per-offspring evaluation streams the whole 64 KB ETC matrix per
//! offspring; the slab streams it once per batch.
//!
//! **Canonicality:** the slab accumulates each machine's completion time
//! in ascending task order — the same summation order as
//! [`Schedule::from_assignment`], [`Schedule::rewrite_assignment`],
//! [`Schedule::renormalize`], and the bucket-exact
//! [`Schedule::move_task`] — so slab results are bit-identical to any
//! from-scratch recompute and rows can be installed into a [`Schedule`]
//! via [`Schedule::load_evaluated`] without re-touching the ETC matrix.

use crate::Schedule;
use etc_model::EtcInstance;

/// A fixed-capacity slab of offspring gene rows with lazily computed
/// completion times and fitness. Rows are either **evaluated** (their
/// completion/fitness caches are valid — e.g. a verbatim parent copy) or
/// **stale** (genes were rewritten; the next [`OffspringBatch::evaluate`]
/// pass re-derives them).
#[derive(Debug, Clone)]
pub struct OffspringBatch {
    n_tasks: usize,
    n_machines: usize,
    capacity: usize,
    /// `B × T`, row-major: row `r`'s genes are `genes[r*T..(r+1)*T]`.
    genes: Vec<u32>,
    /// `B × M`, row-major completion times.
    completion: Vec<f64>,
    /// Per-row makespan, valid when `evaluated[r]`.
    fitness: Vec<f64>,
    /// Row freshness flags.
    evaluated: Vec<bool>,
    /// Scratch list of stale row indices for the batch pass.
    stale: Vec<u32>,
    len: usize,
}

impl OffspringBatch {
    /// An empty slab sized for `instance` with room for `capacity` rows.
    pub fn new(instance: &EtcInstance, capacity: usize) -> Self {
        assert!(capacity >= 1, "batch capacity must be at least 1");
        let (t, m) = (instance.n_tasks(), instance.n_machines());
        Self {
            n_tasks: t,
            n_machines: m,
            capacity,
            genes: vec![0; capacity * t],
            completion: vec![0.0; capacity * m],
            fitness: vec![0.0; capacity],
            evaluated: vec![false; capacity],
            stale: Vec::with_capacity(capacity),
            len: 0,
        }
    }

    /// Maximum number of rows.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently in the slab.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all rows (buffers are retained).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Reserves the next row with undefined gene content and returns its
    /// index; the row starts stale. Callers fill it via
    /// [`OffspringBatch::genes_mut`].
    pub fn push_stale(&mut self) -> usize {
        assert!(self.len < self.capacity, "batch is full");
        let r = self.len;
        self.len += 1;
        self.evaluated[r] = false;
        r
    }

    /// Appends a verbatim parent copy: genes plus its already-canonical
    /// completion times and fitness. The row starts evaluated, so the
    /// batch pass skips it unless a later gene edit marks it stale.
    pub fn push_parent(&mut self, genes: &[u32], completion: &[f64], fitness: f64) -> usize {
        assert_eq!(genes.len(), self.n_tasks, "gene row length mismatch");
        assert_eq!(completion.len(), self.n_machines, "completion row length mismatch");
        let r = self.push_stale();
        self.genes_mut(r).copy_from_slice(genes);
        self.completion[r * self.n_machines..(r + 1) * self.n_machines].copy_from_slice(completion);
        self.fitness[r] = fitness;
        self.evaluated[r] = true;
        r
    }

    /// Row `row`'s genes.
    #[inline]
    pub fn genes(&self, row: usize) -> &[u32] {
        debug_assert!(row < self.len);
        &self.genes[row * self.n_tasks..(row + 1) * self.n_tasks]
    }

    /// Mutable access to row `row`'s genes. Any hand-out marks the row
    /// stale — its cached completion/fitness can no longer be trusted.
    #[inline]
    pub fn genes_mut(&mut self, row: usize) -> &mut [u32] {
        debug_assert!(row < self.len);
        self.evaluated[row] = false;
        &mut self.genes[row * self.n_tasks..(row + 1) * self.n_tasks]
    }

    /// Row `row`'s completion times (valid only when evaluated).
    #[inline]
    pub fn completion_row(&self, row: usize) -> &[f64] {
        debug_assert!(row < self.len);
        &self.completion[row * self.n_machines..(row + 1) * self.n_machines]
    }

    /// Row `row`'s makespan (valid only when evaluated).
    #[inline]
    pub fn fitness(&self, row: usize) -> f64 {
        debug_assert!(self.evaluated[row], "row {row} is stale");
        self.fitness[row]
    }

    /// Whether row `row`'s caches are valid.
    #[inline]
    pub fn is_evaluated(&self, row: usize) -> bool {
        self.evaluated[row]
    }

    /// Index of row `row`'s most loaded machine (ties to the lowest
    /// index, matching [`Schedule::most_loaded_machine`]). Valid only
    /// when evaluated.
    pub fn most_loaded(&self, row: usize) -> usize {
        debug_assert!(self.evaluated[row], "row {row} is stale");
        let ct = self.completion_row(row);
        let mut best = 0;
        for m in 1..ct.len() {
            if ct[m] > ct[best] {
                best = m;
            }
        }
        best
    }

    /// The batch pass: re-derives completion times and fitness for every
    /// stale row in one task-major sweep over the ETC matrix. Each task's
    /// ETC row is loaded once and applied to all stale rows before moving
    /// on — the cache-hot inner loop this type exists for.
    pub fn evaluate(&mut self, instance: &EtcInstance) {
        self.stale.clear();
        for r in 0..self.len {
            if !self.evaluated[r] {
                self.stale.push(r as u32);
            }
        }
        if self.stale.is_empty() {
            return;
        }
        let (nt, nm) = (self.n_tasks, self.n_machines);
        let ready = instance.ready_times();
        for &r in &self.stale {
            let r = r as usize;
            self.completion[r * nm..(r + 1) * nm].copy_from_slice(ready);
        }
        let etc = instance.etc();
        for t in 0..nt {
            let col = etc.task_row(t);
            for &r in &self.stale {
                let r = r as usize;
                let m = self.genes[r * nt + t] as usize;
                self.completion[r * nm + m] += col[m];
            }
        }
        for &r in &self.stale {
            let r = r as usize;
            self.fitness[r] = self.completion[r * nm..(r + 1) * nm]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            self.evaluated[r] = true;
        }
    }

    /// Re-derives one row immediately (the single-row path for operators
    /// that need fresh completion times mid-stage, e.g. rebalance
    /// mutation). Same ascending-task-order accumulation as the batch
    /// pass; a no-op on evaluated rows.
    pub fn evaluate_row(&mut self, instance: &EtcInstance, row: usize) {
        debug_assert!(row < self.len);
        if self.evaluated[row] {
            return;
        }
        let (nt, nm) = (self.n_tasks, self.n_machines);
        self.completion[row * nm..(row + 1) * nm].copy_from_slice(instance.ready_times());
        let etc = instance.etc();
        for t in 0..nt {
            let m = self.genes[row * nt + t] as usize;
            self.completion[row * nm + m] += etc.etc_on(m, t);
        }
        self.fitness[row] = self.completion[row * nm..(row + 1) * nm]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        self.evaluated[row] = true;
    }

    /// Installs an evaluated row into `schedule` (index + argmax rebuilt,
    /// ETC untouched) via [`Schedule::load_evaluated`].
    pub fn materialize_into(&self, instance: &EtcInstance, row: usize, schedule: &mut Schedule) {
        assert!(self.evaluated[row], "materializing a stale row");
        schedule.load_evaluated(instance, self.genes(row), self.completion_row(row));
    }

    /// [`OffspringBatch::materialize_into`] without the index rebuild
    /// ([`Schedule::load_evaluated_deferred`]): the engines' replacement
    /// hot path, where nothing reads the resident cell's index before the
    /// run-exit [`Schedule::ensure_index`] pass.
    pub fn materialize_into_deferred(
        &self,
        instance: &EtcInstance,
        row: usize,
        schedule: &mut Schedule,
    ) {
        assert!(self.evaluated[row], "materializing a stale row");
        schedule.load_evaluated_deferred(instance, self.genes(row), self.completion_row(row));
    }

    /// Oracle fitness for a row: a fresh [`Schedule::from_assignment`]
    /// build plus the O(M) [`Schedule::makespan_full`] fold, sharing no
    /// cached state with the slab. The differential suite and the
    /// engines' `delta_eval = false` mode compare against this.
    pub fn oracle_fitness(&self, instance: &EtcInstance, row: usize) -> f64 {
        Schedule::from_assignment(instance, self.genes(row).to_vec()).makespan_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn batch_matches_per_offspring_schedules_bitwise() {
        let inst = EtcInstance::toy(24, 5);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut batch = OffspringBatch::new(&inst, 8);
        let mut rows = Vec::new();
        for _ in 0..8 {
            let genes: Vec<u32> = (0..24).map(|_| rng.gen_range(0..5u32)).collect();
            let r = batch.push_stale();
            batch.genes_mut(r).copy_from_slice(&genes);
            rows.push(genes);
        }
        batch.evaluate(&inst);
        for (r, genes) in rows.iter().enumerate() {
            let s = Schedule::from_assignment(&inst, genes.clone());
            assert_eq!(batch.fitness(r).to_bits(), s.makespan().to_bits());
            for m in 0..5 {
                assert_eq!(batch.completion_row(r)[m].to_bits(), s.completion(m).to_bits());
            }
            assert_eq!(batch.fitness(r).to_bits(), batch.oracle_fitness(&inst, r).to_bits());
        }
    }

    #[test]
    fn parent_rows_are_skipped_until_edited() {
        let inst = EtcInstance::toy(24, 5);
        let parent = Schedule::round_robin(&inst);
        let mut batch = OffspringBatch::new(&inst, 4);
        let r =
            batch.push_parent(parent.assignment(), parent.completion_times(), parent.makespan());
        assert!(batch.is_evaluated(r));
        batch.evaluate(&inst);
        assert_eq!(batch.fitness(r).to_bits(), parent.makespan().to_bits());
        // Editing a gene invalidates the row; the next pass restores it.
        batch.genes_mut(r)[0] = 3;
        assert!(!batch.is_evaluated(r));
        batch.evaluate(&inst);
        let mut moved = parent.clone();
        moved.move_task(&inst, 0, 3);
        assert_eq!(batch.fitness(r).to_bits(), moved.makespan().to_bits());
    }

    #[test]
    fn evaluate_row_matches_batch_pass() {
        let inst = EtcInstance::toy(24, 5);
        let mut rng = SmallRng::seed_from_u64(11);
        let genes: Vec<u32> = (0..24).map(|_| rng.gen_range(0..5u32)).collect();
        let mut a = OffspringBatch::new(&inst, 2);
        let ra = a.push_stale();
        a.genes_mut(ra).copy_from_slice(&genes);
        a.evaluate_row(&inst, ra);
        let mut b = OffspringBatch::new(&inst, 2);
        let rb = b.push_stale();
        b.genes_mut(rb).copy_from_slice(&genes);
        b.evaluate(&inst);
        assert_eq!(a.fitness(ra).to_bits(), b.fitness(rb).to_bits());
        assert_eq!(a.completion_row(ra), b.completion_row(rb));
    }

    #[test]
    fn materialize_round_trips_through_schedule() {
        let inst = EtcInstance::toy(24, 5);
        let mut rng = SmallRng::seed_from_u64(13);
        let genes: Vec<u32> = (0..24).map(|_| rng.gen_range(0..5u32)).collect();
        let mut batch = OffspringBatch::new(&inst, 1);
        let r = batch.push_stale();
        batch.genes_mut(r).copy_from_slice(&genes);
        batch.evaluate(&inst);
        let mut s = Schedule::round_robin(&inst);
        batch.materialize_into(&inst, r, &mut s);
        assert_eq!(s, Schedule::from_assignment(&inst, genes));
        assert_eq!(s.makespan().to_bits(), batch.fitness(r).to_bits());
    }

    #[test]
    #[should_panic(expected = "batch is full")]
    fn overflow_panics() {
        let inst = EtcInstance::toy(4, 2);
        let mut batch = OffspringBatch::new(&inst, 1);
        batch.push_stale();
        batch.push_stale();
    }
}
