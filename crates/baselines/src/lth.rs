//! Local Tabu Hill-climbing (LTH) — the memetic operator of the cMA+LTH
//! baseline (Xhafa, Alba, Dorronsoro & Duran, JMMA 2008).
//!
//! A short hill climb over *task-move* neighborhoods with a tabu memory on
//! recently moved tasks: each iteration examines moving a sample of tasks
//! off the most loaded machine and applies the best strictly improving
//! non-tabu move; the moved task then becomes tabu for `tabu_tenure`
//! iterations. Compared to H2LL it searches a wider move set (any target
//! machine, several source tasks) but costs more per iteration — exactly
//! the trade-off the PA-CGA paper's cheaper H2LL was designed around.

use etc_model::EtcInstance;
use rand::Rng;
use scheduling::Schedule;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The LTH operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TabuHillClimb {
    /// Hill-climbing iterations per application.
    pub iterations: usize,
    /// How many candidate source tasks to sample from the most loaded
    /// machine per iteration.
    pub sample_tasks: usize,
    /// How long (in iterations) a moved task stays tabu.
    pub tabu_tenure: usize,
}

impl Default for TabuHillClimb {
    fn default() -> Self {
        Self { iterations: 5, sample_tasks: 4, tabu_tenure: 8 }
    }
}

impl TabuHillClimb {
    /// Applies the operator in place; returns the number of accepted
    /// moves. Never increases the makespan (only strictly improving moves
    /// are accepted).
    pub fn apply(
        &self,
        instance: &EtcInstance,
        schedule: &mut Schedule,
        rng: &mut impl Rng,
    ) -> usize {
        let n_machines = schedule.n_machines();
        if n_machines < 2 {
            return 0;
        }
        let etc = instance.etc();
        let mut tabu: VecDeque<usize> = VecDeque::with_capacity(self.tabu_tenure + 1);
        let mut moves = 0;

        for _ in 0..self.iterations {
            let loaded = schedule.most_loaded_machine();
            let makespan = schedule.completion(loaded);
            // Borrowed from the task index — no per-iteration allocation.
            let n_candidates = schedule.count_on(loaded);
            if n_candidates == 0 {
                break;
            }

            // Sample source tasks (without replacement when possible).
            let mut best: Option<(usize, usize, f64)> = None; // (task, machine, new CT)
            for _ in 0..self.sample_tasks.min(n_candidates) {
                // Same single gen_range draw as the retired slice-index
                // pick, so sampling stays bit-identical.
                let task =
                    schedule.random_task_on(loaded, rng).expect("source machine is non-empty");
                if tabu.contains(&task) {
                    continue;
                }
                for mac in 0..n_machines {
                    if mac == loaded {
                        continue;
                    }
                    let new_ct = schedule.completion(mac) + etc.etc_on(mac, task);
                    // Strictly improving: the destination stays below the
                    // current makespan.
                    if new_ct < makespan && best.is_none_or(|(_, _, b)| new_ct < b) {
                        best = Some((task, mac, new_ct));
                    }
                }
            }

            match best {
                Some((task, mac, _)) => {
                    schedule.move_task(instance, task, mac);
                    moves += 1;
                    tabu.push_back(task);
                    while tabu.len() > self.tabu_tenure {
                        tabu.pop_front();
                    }
                }
                None => {
                    // Hill climbing: no improving non-tabu move, stop early.
                    break;
                }
            }
        }
        moves
    }
}

impl std::fmt::Display for TabuHillClimb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LTH(iter={}, tabu={})", self.iterations, self.tabu_tenure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etc_model::{EtcInstance, EtcMatrix};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scheduling::check_schedule;

    #[test]
    fn never_increases_makespan() {
        let inst = EtcInstance::toy(32, 6);
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut s = Schedule::random(&inst, &mut rng);
            let before = s.makespan();
            TabuHillClimb::default().apply(&inst, &mut s, &mut rng);
            assert!(s.makespan() <= before + 1e-9);
            assert!(check_schedule(&inst, &s).is_ok());
        }
    }

    #[test]
    fn improves_degenerate_schedule() {
        let inst = EtcInstance::new("u", EtcMatrix::from_fn(16, 4, |_, _| 1.0));
        let mut s = Schedule::from_assignment(&inst, vec![0; 16]);
        let mut rng = SmallRng::seed_from_u64(1);
        let op = TabuHillClimb { iterations: 12, ..Default::default() };
        let moves = op.apply(&inst, &mut s, &mut rng);
        assert!(moves > 0);
        assert!(s.makespan() < 16.0);
    }

    #[test]
    fn tabu_prevents_immediate_repeat_move() {
        // Two machines, one hot task: after moving it, it is tabu; the
        // climb must stop rather than bounce it back.
        let inst =
            EtcInstance::new("hot", EtcMatrix::from_task_major(2, 2, vec![10.0, 10.0, 1.0, 1.0]));
        let mut s = Schedule::from_assignment(&inst, vec![0, 0]);
        let mut rng = SmallRng::seed_from_u64(3);
        let op = TabuHillClimb { iterations: 10, sample_tasks: 2, tabu_tenure: 10 };
        let moves = op.apply(&inst, &mut s, &mut rng);
        // Move task 0 (or 1) across once, then no improving move remains.
        assert!(moves <= 2, "bounced: {moves} moves");
        assert!(check_schedule(&inst, &s).is_ok());
    }

    #[test]
    fn single_machine_is_noop() {
        let inst = EtcInstance::toy(8, 1);
        let mut s = Schedule::from_assignment(&inst, vec![0; 8]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(TabuHillClimb::default().apply(&inst, &mut s, &mut rng), 0);
    }

    #[test]
    fn zero_iterations_is_identity() {
        let inst = EtcInstance::toy(8, 3);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut s = Schedule::random(&inst, &mut rng);
        let before = s.clone();
        let op = TabuHillClimb { iterations: 0, ..Default::default() };
        op.apply(&inst, &mut s, &mut rng);
        assert_eq!(s, before);
    }
}
