//! # Literature baselines for Table 2
//!
//! The paper compares PA-CGA against two published metaheuristics whose
//! code is not available; both are re-implemented here from their papers'
//! descriptions (see DESIGN.md §4 for the substitution rationale):
//!
//! * [`struggle::StruggleGa`] — Xhafa's steady-state GA with **struggle
//!   replacement** (BIOMA 2006, ref \[19\]): each offspring replaces the most
//!   *similar* individual of the panmictic population, but only if fitter.
//! * [`cma_lth::CmaLth`] — the cellular memetic algorithm hybridized with
//!   **local tabu hill-climbing** of Xhafa, Alba, Dorronsoro & Duran
//!   (JMMA 2008, ref \[20\]): a synchronous cellular GA whose memetic step is
//!   the [`lth::TabuHillClimb`] operator.
//!
//! Both engines share PA-CGA's operator implementations and report the
//! same [`pa_cga_core::trace::RunOutcome`], so the Table 2 harness treats
//! all algorithms uniformly.

pub mod cma_lth;
pub mod lth;
pub mod struggle;

pub use cma_lth::{CmaLth, CmaLthConfig};
pub use lth::TabuHillClimb;
pub use struggle::{similarity, StruggleConfig, StruggleGa};
