//! Struggle GA (Xhafa, BIOMA 2006 — ref \[19\] of the PA-CGA paper).
//!
//! A steady-state panmictic GA whose replacement operator is the
//! distinguishing feature: the offspring *struggles* against the most
//! **similar** individual of the population and replaces it only when
//! fitter. Similarity between two schedules is the fraction of tasks
//! assigned to the same machine. Struggle replacement preserves diversity
//! in a panmictic population much like cellular structure does spatially.

use etc_model::EtcInstance;
use pa_cga_core::config::Termination;
use pa_cga_core::crossover::CrossoverOp;
use pa_cga_core::individual::Individual;
use pa_cga_core::mutation::MutationOp;
use pa_cga_core::rng::stream_rng;
use pa_cga_core::trace::{RunOutcome, ThreadTrace};
use rand::Rng;
use scheduling::Schedule;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Struggle GA parameterization (defaults follow the baseline paper's
/// magnitudes: steady-state, binary tournament, one-point crossover, move
/// mutation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StruggleConfig {
    /// Population size (panmictic).
    pub pop_size: usize,
    /// Crossover probability.
    pub p_crossover: f64,
    /// Mutation probability.
    pub p_mutation: f64,
    /// Crossover operator.
    pub crossover: CrossoverOp,
    /// Mutation operator.
    pub mutation: MutationOp,
    /// Stop condition. `Generations` counts `pop_size` offspring as one
    /// generation (steady-state convention).
    pub termination: Termination,
    /// Master seed.
    pub seed: u64,
    /// Seed one individual with Min-min (same courtesy as PA-CGA).
    pub seed_min_min: bool,
    /// Record per-generation traces.
    pub record_traces: bool,
}

impl Default for StruggleConfig {
    fn default() -> Self {
        Self {
            pop_size: 256,
            p_crossover: 0.8,
            p_mutation: 0.4,
            crossover: CrossoverOp::OnePoint,
            mutation: MutationOp::Move,
            termination: Termination::Evaluations(100_000),
            seed: 0,
            seed_min_min: true,
            record_traces: false,
        }
    }
}

/// Fraction of tasks the two schedules assign to the same machine
/// (1.0 = identical assignment).
pub fn similarity(a: &Schedule, b: &Schedule) -> f64 {
    debug_assert_eq!(a.n_tasks(), b.n_tasks());
    let same = a.assignment().iter().zip(b.assignment()).filter(|(x, y)| x == y).count();
    same as f64 / a.n_tasks() as f64
}

/// The Struggle GA engine.
#[derive(Debug)]
pub struct StruggleGa<'a> {
    instance: &'a EtcInstance,
    config: StruggleConfig,
}

/// Sequential engine: one weight-1 portfolio slot per run.
impl pa_cga_core::runner::Runnable for StruggleGa<'_> {
    fn run_once(&self) -> RunOutcome {
        self.run()
    }
}

impl<'a> StruggleGa<'a> {
    /// Binds a configuration to an instance.
    pub fn new(instance: &'a EtcInstance, config: StruggleConfig) -> Self {
        assert!(config.pop_size >= 2, "population too small");
        assert!((0.0..=1.0).contains(&config.p_crossover), "p_crossover out of range");
        assert!((0.0..=1.0).contains(&config.p_mutation), "p_mutation out of range");
        Self { instance, config }
    }

    /// Runs to termination.
    pub fn run(&self) -> RunOutcome {
        self.run_with_population().0
    }

    /// Runs to termination, also returning the final population (for
    /// diversity studies).
    pub fn run_with_population(&self) -> (RunOutcome, Vec<Individual>) {
        let cfg = &self.config;
        let instance = self.instance;
        let mut rng = stream_rng(cfg.seed, 0);

        let mut pop: Vec<Individual> = (0..cfg.pop_size)
            .map(|_| Individual::new(Schedule::random(instance, &mut rng)))
            .collect();
        if cfg.seed_min_min {
            pop[0] = Individual::new(heuristics::min_min(instance));
        }
        let mut evaluations = cfg.pop_size as u64;
        let mut offspring = pop[0].clone();
        let mut trace = ThreadTrace::default();
        let start = Instant::now();
        let mut generations = 0u64;
        let mut replacements = 0u64;

        loop {
            // One steady-state "generation": pop_size struggle steps.
            for _ in 0..cfg.pop_size {
                let p1 = binary_tournament(&pop, &mut rng);
                let p2 = binary_tournament(&pop, &mut rng);
                if rng.gen_bool(cfg.p_crossover) {
                    cfg.crossover.recombine_into(
                        instance,
                        &pop[p1].schedule,
                        &pop[p2].schedule,
                        &mut offspring.schedule,
                        &mut rng,
                    );
                } else {
                    offspring.schedule.copy_from(&pop[p1].schedule);
                }
                if rng.gen_bool(cfg.p_mutation) {
                    cfg.mutation.mutate(instance, &mut offspring.schedule, &mut rng);
                }
                offspring.evaluate();
                evaluations += 1;

                // Struggle replacement: fight the most similar individual.
                let rival = most_similar(&pop, &offspring.schedule);
                if offspring.fitness < pop[rival].fitness {
                    pop[rival].copy_from(&offspring);
                    replacements += 1;
                }
            }
            generations += 1;

            if cfg.record_traces {
                let sum: f64 = pop.iter().map(|i| i.fitness).sum();
                let best = pop.iter().map(|i| i.fitness).fold(f64::INFINITY, f64::min);
                trace.push(sum / pop.len() as f64, best);
            }
            if cfg.termination.should_stop(start, generations, evaluations) {
                break;
            }
        }

        let best = pop
            .iter()
            .min_by(|a, b| a.fitness.partial_cmp(&b.fitness).expect("finite fitness"))
            .expect("population is non-empty")
            .clone();
        (
            RunOutcome {
                best,
                evaluations,
                generations: vec![generations],
                replacements: vec![replacements],
                elapsed: start.elapsed(),
                traces: vec![trace],
            },
            pop,
        )
    }
}

fn binary_tournament(pop: &[Individual], rng: &mut impl Rng) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    if pop[a].fitness <= pop[b].fitness {
        a
    } else {
        b
    }
}

fn most_similar(pop: &[Individual], schedule: &Schedule) -> usize {
    let mut best = 0;
    let mut best_sim = f64::NEG_INFINITY;
    for (i, ind) in pop.iter().enumerate() {
        let s = similarity(&ind.schedule, schedule);
        if s > best_sim {
            best_sim = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use scheduling::check_schedule;

    fn config(evals: u64) -> StruggleConfig {
        StruggleConfig {
            pop_size: 32,
            termination: Termination::Evaluations(evals),
            seed: 9,
            record_traces: true,
            ..StruggleConfig::default()
        }
    }

    #[test]
    fn similarity_bounds() {
        let inst = EtcInstance::toy(8, 3);
        let a = Schedule::round_robin(&inst);
        assert_eq!(similarity(&a, &a), 1.0);
        let b = Schedule::from_assignment(&inst, vec![2, 2, 0, 2, 2, 2, 0, 2]);
        let s = similarity(&a, &b);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn similarity_counts_matches() {
        let inst = EtcInstance::toy(4, 3);
        let a = Schedule::from_assignment(&inst, vec![0, 1, 2, 0]);
        let b = Schedule::from_assignment(&inst, vec![0, 1, 0, 1]);
        assert_eq!(similarity(&a, &b), 0.5);
    }

    #[test]
    fn deterministic_runs() {
        let inst = EtcInstance::toy(24, 4);
        let a = StruggleGa::new(&inst, config(2000)).run();
        let b = StruggleGa::new(&inst, config(2000)).run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn improves_and_stays_valid() {
        let inst = EtcInstance::toy(24, 4);
        let out = StruggleGa::new(&inst, config(3000)).run();
        assert!(check_schedule(&inst, &out.best.schedule).is_ok());
        assert!(out.best.makespan() <= heuristics::min_min(&inst).makespan());
        // Best trace is monotone: struggle replacement never discards the
        // population best in favor of a worse offspring.
        for w in out.traces[0].block_best.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn evaluation_budget_respected() {
        let inst = EtcInstance::toy(24, 4);
        let out = StruggleGa::new(&inst, config(500)).run();
        assert!(out.evaluations >= 500);
        assert!(out.evaluations <= 500 + 32 + 32);
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn tiny_population_rejected() {
        let inst = EtcInstance::toy(4, 2);
        StruggleGa::new(&inst, StruggleConfig { pop_size: 1, ..StruggleConfig::default() });
    }
}
