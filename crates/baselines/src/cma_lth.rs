//! cMA+LTH — synchronous cellular memetic algorithm with local tabu
//! hill-climbing (Xhafa, Alba, Dorronsoro & Duran, JMMA 2008; ref \[20\]).
//!
//! A classic *synchronous* cellular GA (auxiliary population swapped per
//! generation) whose breeding loop ends with the [`TabuHillClimb`] memetic
//! step. Reuses PA-CGA's grid, neighborhood, selection, crossover and
//! mutation implementations so Table 2 compares algorithms, not
//! implementations.

use crate::lth::TabuHillClimb;
use etc_model::EtcInstance;
use pa_cga_core::config::Termination;
use pa_cga_core::crossover::CrossoverOp;
use pa_cga_core::grid::GridTopology;
use pa_cga_core::individual::Individual;
use pa_cga_core::mutation::MutationOp;
use pa_cga_core::neighborhood::{NeighborhoodShape, NeighborhoodTable};
use pa_cga_core::rng::stream_rng;
use pa_cga_core::selection::SelectionOp;
use pa_cga_core::trace::{RunOutcome, ThreadTrace};
use rand::Rng;
use scheduling::Schedule;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// cMA+LTH parameterization (defaults follow the baseline paper's
/// magnitudes: 16×16 grid, L5, binary tournament, one-point crossover 0.8,
/// move mutation 0.4, short LTH each offspring).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmaLthConfig {
    /// Grid columns.
    pub grid_width: usize,
    /// Grid rows.
    pub grid_height: usize,
    /// Neighborhood shape.
    pub neighborhood: NeighborhoodShape,
    /// Parent selection.
    pub selection: SelectionOp,
    /// Crossover operator and probability.
    pub crossover: CrossoverOp,
    /// Crossover probability.
    pub p_crossover: f64,
    /// Mutation operator.
    pub mutation: MutationOp,
    /// Mutation probability.
    pub p_mutation: f64,
    /// The memetic LTH step.
    pub local_search: TabuHillClimb,
    /// Stop condition.
    pub termination: Termination,
    /// Master seed.
    pub seed: u64,
    /// Seed one individual with Min-min.
    pub seed_min_min: bool,
    /// Record per-generation traces.
    pub record_traces: bool,
}

impl Default for CmaLthConfig {
    fn default() -> Self {
        Self {
            grid_width: 16,
            grid_height: 16,
            neighborhood: NeighborhoodShape::L5,
            selection: SelectionOp::BinaryTournament,
            crossover: CrossoverOp::OnePoint,
            p_crossover: 0.8,
            mutation: MutationOp::Move,
            p_mutation: 0.4,
            local_search: TabuHillClimb::default(),
            termination: Termination::Evaluations(100_000),
            seed: 0,
            seed_min_min: true,
            record_traces: false,
        }
    }
}

/// The cMA+LTH engine.
#[derive(Debug)]
pub struct CmaLth<'a> {
    instance: &'a EtcInstance,
    config: CmaLthConfig,
}

/// Sequential engine: one weight-1 portfolio slot per run.
impl pa_cga_core::runner::Runnable for CmaLth<'_> {
    fn run_once(&self) -> RunOutcome {
        self.run()
    }
}

impl<'a> CmaLth<'a> {
    /// Binds a configuration to an instance.
    pub fn new(instance: &'a EtcInstance, config: CmaLthConfig) -> Self {
        assert!(config.grid_width > 0 && config.grid_height > 0, "grid must be non-empty");
        assert!((0.0..=1.0).contains(&config.p_crossover), "p_crossover out of range");
        assert!((0.0..=1.0).contains(&config.p_mutation), "p_mutation out of range");
        Self { instance, config }
    }

    /// Runs to termination.
    pub fn run(&self) -> RunOutcome {
        let cfg = &self.config;
        let instance = self.instance;
        let grid = GridTopology::new(cfg.grid_width, cfg.grid_height);
        let table = NeighborhoodTable::new(grid, cfg.neighborhood);
        let mut rng = stream_rng(cfg.seed, 0);

        let mut pop: Vec<Individual> = (0..grid.len())
            .map(|_| Individual::new(Schedule::random(instance, &mut rng)))
            .collect();
        if cfg.seed_min_min {
            pop[0] = Individual::new(heuristics::min_min(instance));
        }
        let mut aux = pop.clone();
        let mut evaluations = pop.len() as u64;
        let mut offspring = pop[0].clone();
        let mut snapshot: Vec<(u32, f64)> = Vec::with_capacity(cfg.neighborhood.size());
        let mut trace = ThreadTrace::default();
        let start = Instant::now();
        let mut generations = 0u64;
        let mut replacements = 0u64;

        loop {
            for i in 0..pop.len() {
                snapshot.clear();
                for &nb in table.neighbors(i) {
                    snapshot.push((nb, pop[nb as usize].fitness));
                }
                let (s0, s1) = cfg.selection.select(&snapshot, &mut rng);
                let p1 = &pop[snapshot[s0].0 as usize];
                let p2 = &pop[snapshot[s1].0 as usize];

                if rng.gen_bool(cfg.p_crossover) {
                    cfg.crossover.recombine_into(
                        instance,
                        &p1.schedule,
                        &p2.schedule,
                        &mut offspring.schedule,
                        &mut rng,
                    );
                } else {
                    offspring.schedule.copy_from(&p1.schedule);
                }
                if rng.gen_bool(cfg.p_mutation) {
                    cfg.mutation.mutate(instance, &mut offspring.schedule, &mut rng);
                }
                // The memetic step.
                cfg.local_search.apply(instance, &mut offspring.schedule, &mut rng);
                offspring.evaluate();
                evaluations += 1;

                if offspring.fitness < pop[i].fitness {
                    aux[i].copy_from(&offspring);
                    replacements += 1;
                } else {
                    aux[i].copy_from(&pop[i]);
                }
            }
            std::mem::swap(&mut pop, &mut aux);
            generations += 1;

            if cfg.record_traces {
                let sum: f64 = pop.iter().map(|ind| ind.fitness).sum();
                let best = pop.iter().map(|ind| ind.fitness).fold(f64::INFINITY, f64::min);
                trace.push(sum / pop.len() as f64, best);
            }
            if cfg.termination.should_stop(start, generations, evaluations) {
                break;
            }
        }

        let best = pop
            .iter()
            .min_by(|a, b| a.fitness.partial_cmp(&b.fitness).expect("finite fitness"))
            .expect("population is non-empty")
            .clone();
        RunOutcome {
            best,
            evaluations,
            generations: vec![generations],
            replacements: vec![replacements],
            elapsed: start.elapsed(),
            traces: vec![trace],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scheduling::check_schedule;

    fn config(evals: u64) -> CmaLthConfig {
        CmaLthConfig {
            grid_width: 6,
            grid_height: 6,
            termination: Termination::Evaluations(evals),
            seed: 17,
            record_traces: true,
            ..CmaLthConfig::default()
        }
    }

    #[test]
    fn deterministic() {
        let inst = EtcInstance::toy(24, 4);
        let a = CmaLth::new(&inst, config(2000)).run();
        let b = CmaLth::new(&inst, config(2000)).run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn valid_and_improves_min_min() {
        let inst = EtcInstance::toy(24, 4);
        let out = CmaLth::new(&inst, config(4000)).run();
        assert!(check_schedule(&inst, &out.best.schedule).is_ok());
        assert!(out.best.makespan() <= heuristics::min_min(&inst).makespan());
    }

    #[test]
    fn best_trace_monotone() {
        let inst = EtcInstance::toy(24, 4);
        let out = CmaLth::new(&inst, config(3000)).run();
        for w in out.traces[0].block_best.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn budget_respected() {
        let inst = EtcInstance::toy(24, 4);
        let out = CmaLth::new(&inst, config(700)).run();
        assert!(out.evaluations >= 700);
        assert!(out.evaluations <= 700 + 2 * 36);
    }
}
